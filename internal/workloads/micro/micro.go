// Package micro contains the paper's motivation microbenchmarks.
//
// MemsetTwice is the §3 experiment behind Figure 4: allocate SIZE bytes,
// memset them twice, and split the first memset's time into kernel work
// (page faults + kernel zeroing) and program zeroing. The second memset —
// which faults nothing — is the paper's conservative proxy for kernel
// zeroing time.
package micro

import (
	"silentshredder/internal/addr"
	"silentshredder/internal/apprt"
	"silentshredder/internal/clock"
)

// MemsetResult is the timing split of the two memsets.
type MemsetResult struct {
	Size int

	// FirstCycles is the first memset's total time: page faults, kernel
	// zeroing, and program stores.
	FirstCycles clock.Cycles

	// SecondCycles is the second memset's time: program stores only.
	SecondCycles clock.Cycles

	// KernelZeroCycles is the portion of the first memset the kernel
	// spent clearing pages (measured, not inferred).
	KernelZeroCycles clock.Cycles

	// FaultCycles is total page-fault time (overhead + clearing).
	FaultCycles clock.Cycles
}

// KernelZeroShare returns the fraction of the first memset spent in
// kernel zeroing — the paper reports ~32% on average and cites up to 40%
// of page-fault time.
func (r MemsetResult) KernelZeroShare() float64 {
	if r.FirstCycles == 0 {
		return 0
	}
	return float64(r.KernelZeroCycles) / float64(r.FirstCycles)
}

// MemsetTwice runs the Figure 4 microbenchmark for the given size.
func MemsetTwice(rt *apprt.Runtime, size int) MemsetResult {
	k := rt.Kernel()
	core := rt.Core()

	va := rt.Malloc(size)

	zero0, fault0 := k.ZeroCycles(), k.FaultCycles()
	start := core.Cycles()
	rt.Memset(va, 0, size)
	mid := core.Cycles()
	rt.Memset(va, 0, size)
	end := core.Cycles()

	return MemsetResult{
		Size:             size,
		FirstCycles:      mid - start,
		SecondCycles:     end - mid,
		KernelZeroCycles: clock.Cycles(k.ZeroCycles() - zero0),
		FaultCycles:      clock.Cycles(k.FaultCycles() - fault0),
	}
}

// TouchPages allocates npages and dirties one block in each — the
// minimal workload that triggers one kernel page-clearing per page. It
// returns the virtual base.
func TouchPages(rt *apprt.Runtime, npages int) addr.Virt {
	va := rt.Malloc(npages * addr.PageSize)
	for i := 0; i < npages; i++ {
		rt.Store(va+addr.Virt(i*addr.PageSize), uint64(i)|1)
	}
	return va
}

// StreamReads reads nblocks sequentially starting at va (one load per
// 64B block), modeling a scan over freshly initialized memory.
func StreamReads(rt *apprt.Runtime, va addr.Virt, nblocks int) {
	for i := 0; i < nblocks; i++ {
		rt.Load(va + addr.Virt(i*addr.BlockSize))
	}
}
