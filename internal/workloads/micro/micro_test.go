package micro

import (
	"testing"

	"silentshredder/internal/addr"
	"silentshredder/internal/apprt"
	"silentshredder/internal/kernel"
	"silentshredder/internal/memctrl"
	"silentshredder/internal/sim"
)

func microRT(t *testing.T, mode memctrl.Mode, zm kernel.ZeroMode) *apprt.Runtime {
	t.Helper()
	cfg := sim.ScaledConfig(mode, zm, 128)
	cfg.Hier.Cores = 1
	cfg.MemPages = 1 << 16
	cfg.StoreData = false
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m.Runtime(0)
}

func TestMemsetTwiceSplitsKernelTime(t *testing.T) {
	rt := microRT(t, memctrl.Baseline, kernel.ZeroNonTemporal)
	res := MemsetTwice(rt, 256*addr.PageSize)
	if res.FirstCycles <= res.SecondCycles {
		t.Fatalf("first memset (%d) must be slower than second (%d)",
			res.FirstCycles, res.SecondCycles)
	}
	if res.KernelZeroCycles == 0 || res.FaultCycles == 0 {
		t.Fatal("kernel time not attributed")
	}
	share := res.KernelZeroShare()
	if share <= 0.05 || share >= 0.95 {
		t.Fatalf("kernel zero share = %.2f, implausible", share)
	}
	// Kernel zeroing is part of fault time; fault time is part of the
	// first memset.
	if res.KernelZeroCycles > res.FaultCycles || res.FaultCycles > res.FirstCycles {
		t.Fatalf("time hierarchy violated: zero=%d fault=%d first=%d",
			res.KernelZeroCycles, res.FaultCycles, res.FirstCycles)
	}
}

func TestShredShrinksFirstMemsetGap(t *testing.T) {
	nt := MemsetTwice(microRT(t, memctrl.Baseline, kernel.ZeroNonTemporal), 128*addr.PageSize)
	ss := MemsetTwice(microRT(t, memctrl.SilentShredder, kernel.ZeroShred), 128*addr.PageSize)
	if ss.KernelZeroCycles >= nt.KernelZeroCycles {
		t.Fatalf("shred kernel time (%d) must be below non-temporal (%d)",
			ss.KernelZeroCycles, nt.KernelZeroCycles)
	}
	if ss.FirstCycles >= nt.FirstCycles {
		t.Fatalf("shred first memset (%d) must beat non-temporal (%d)",
			ss.FirstCycles, nt.FirstCycles)
	}
}

func TestKernelZeroShareZeroForEmptyResult(t *testing.T) {
	var r MemsetResult
	if r.KernelZeroShare() != 0 {
		t.Fatal("empty result share must be 0")
	}
}

func TestTouchPagesFaultsEachPage(t *testing.T) {
	rt := microRT(t, memctrl.SilentShredder, kernel.ZeroShred)
	TouchPages(rt, 10)
	if rt.Kernel().PageFaults() != 10 {
		t.Fatalf("faults = %d", rt.Kernel().PageFaults())
	}
}

func TestStreamReadsHitShreddedBlocks(t *testing.T) {
	rt := microRT(t, memctrl.SilentShredder, kernel.ZeroShred)
	va := TouchPages(rt, 8)
	rt.Kernel().Hierarchy().FlushAll()
	StreamReads(rt, va, 8*addr.BlocksPerPage)
	if rt.Kernel().Controller().ZeroFillReads() == 0 {
		t.Fatal("scan of shredded pages must produce zero-fill reads")
	}
}
