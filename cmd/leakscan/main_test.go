package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"silentshredder/internal/addr"
	"silentshredder/internal/kernel"
	"silentshredder/internal/memctrl"
	"silentshredder/internal/sim"
)

// exec runs the CLI entry point with captured streams.
func exec(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestUsageErrors: malformed invocations exit 2 with a diagnostic, never
// 0 (silently ignored) or 1 (confused with a real leak).
func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-format", "xml", "-attack", "all"},
		{"-attack", "evil"},
		{"-attack", "all", "-personality", "armored"},
		{"-attack", "all", "-policy", "shred-harder"},
		{"-no-such-flag"},
	} {
		code, _, stderr := exec(t, args...)
		if code != 2 {
			t.Errorf("run(%q) = %d, want 2", args, code)
		}
		if stderr == "" {
			t.Errorf("run(%q) printed no diagnostic", args)
		}
	}
}

// TestAttackExitCodes: exit 1 exactly when an attacker recovered bytes.
func TestAttackExitCodes(t *testing.T) {
	code, stdout, _ := exec(t, "-attack", "replay", "-personality", "merkle")
	if code != 0 {
		t.Fatalf("merkle defender exited %d, want 0:\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "DETECTED") {
		t.Errorf("merkle narration missing detection:\n%s", stdout)
	}

	code, stdout, _ = exec(t, "-attack", "replay", "-personality", "encrypted")
	if code != 1 {
		t.Fatalf("vulnerable defender exited %d, want 1:\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "ATTACK SUCCEEDED") {
		t.Errorf("leak narration missing:\n%s", stdout)
	}

	code, stdout, _ = exec(t, "-attack", "replay", "-personality", "encrypted", "-policy", "duty-to-delete")
	if code != 0 {
		t.Fatalf("scrubbed defender exited %d, want 0:\n%s", code, stdout)
	}
}

// TestAttackJSONGolden: the machine-readable report is byte-stable — the
// committed golden is the adversarial matrix's CLI contract. Regenerate
// with:
//
//	go run ./cmd/leakscan -attack replay -personality encrypted -format json > cmd/leakscan/testdata/attack_replay_encrypted.json
func TestAttackJSONGolden(t *testing.T) {
	code, stdout, _ := exec(t, "-attack", "replay", "-personality", "encrypted", "-format", "json")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "attack_replay_encrypted.json"))
	if err != nil {
		t.Fatal(err)
	}
	if stdout != string(want) {
		t.Errorf("JSON report drifted from golden:\n got: %s\nwant: %s", stdout, want)
	}
}

// TestImageScan: an unencrypted DIMM image leaks its plaintext to the
// scanner; the same contents behind counter-mode encryption scan clean.
func TestImageScan(t *testing.T) {
	const secret = "BEGIN RSA PRIVATE KEY"
	dir := t.TempDir()

	save := func(name string, disableEnc bool) string {
		cfg := sim.ScaledConfig(memctrl.SilentShredder, kernel.ZeroShred, 64)
		cfg.Hier.Cores = 1
		cfg.StoreData = true
		cfg.MemCtrl.DisableEncryption = disableEnc
		m := sim.MustNew(cfg)
		rt := m.Runtime(0)
		va := rt.Malloc(addr.PageSize)
		rt.StoreBytes(va, []byte(secret))
		m.Hier.FlushAll()
		m.MC.Flush()
		p := filepath.Join(dir, name)
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := m.SaveMemoryState(f); err != nil {
			t.Fatal(err)
		}
		return p
	}

	plain := save("plain.img", true)
	code, stdout, _ := exec(t, "-image", plain, "-pattern", secret)
	if code != 1 || !strings.Contains(stdout, "LEAK") {
		t.Errorf("plaintext image: exit %d, out:\n%s", code, stdout)
	}
	code, stdout, _ = exec(t, "-image", plain, "-pattern", secret, "-format", "json")
	if code != 1 || !strings.Contains(stdout, `"clean": false`) {
		t.Errorf("plaintext image json: exit %d, out:\n%s", code, stdout)
	}

	enc := save("enc.img", false)
	code, stdout, _ = exec(t, "-image", enc, "-pattern", secret)
	if code != 0 || !strings.Contains(stdout, "not found") {
		t.Errorf("encrypted image: exit %d, out:\n%s", code, stdout)
	}
}

// TestCrashScanJSON: the -crash mode's report stays clean and
// well-formed through the run() seam.
func TestCrashScanJSON(t *testing.T) {
	code, stdout, stderr := exec(t, "-crash", "2", "-seed", "42", "-format", "json")
	if code != 0 {
		t.Fatalf("crash scan exited %d: %s", code, stderr)
	}
	for _, want := range []string{`"clean": true`, `"leaks": 0`, `"quiescence": true`} {
		if !strings.Contains(stdout, want) {
			t.Errorf("crash report missing %s:\n%s", want, stdout)
		}
	}
}
