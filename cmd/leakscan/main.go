// Command leakscan is the attack-model forensics tool: it walks a DIMM
// image (a memory-state checkpoint written by shredsim -save-nvm or
// sim.SaveMemoryState) the way an adversary with physical access would —
// scanning raw cells for plaintext — and reports what it finds.
//
// On a correctly operating secure controller the data region contains
// only ciphertext, so a scan for any plaintext pattern comes up empty;
// the tool exists to demonstrate (and regression-check) exactly that.
//
//	leakscan -image dimm.img -pattern "BEGIN RSA PRIVATE KEY"
//	leakscan -image dimm.img -entropy   # per-page byte-entropy summary
//	leakscan -image dimm.img -pattern secret -format json  # machine-readable
//
// With -crash N the tool scans post-crash recovered images instead of a
// checkpoint: it replays a seeded workload on a crash-safe Silent
// Shredder machine, cuts power at N evenly spaced device-write indices
// (plus quiescence), recovers each time, and scans every recovered image
// for pre-shred plaintext — bytes that a completed shred promised were
// gone. Any hit is a leak and exits nonzero.
//
//	leakscan -crash 16 -seed 42
//
// With -attack the tool becomes the adversarial driver: it runs the
// internal/adversary engine — the remanence reader, the crash-window
// scavenger and the stale-counter replayer — against one defender
// personality (-personality plain|encrypted|merkle) under one physical
// shred policy (-policy zero-cost|duty-to-delete|multi-pass) and
// reports each attacker's score. Any recovered pre-shred byte exits
// nonzero.
//
//	leakscan -attack all -personality merkle -policy zero-cost
//	leakscan -attack replay -personality encrypted -format json
//
// -format json replaces the human narration with one JSON findings
// report on stdout (same exit codes), for CI and downstream tooling.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"silentshredder/internal/addr"
	"silentshredder/internal/adversary"
	"silentshredder/internal/kernel"
	"silentshredder/internal/memctrl"
	"silentshredder/internal/obs"
	"silentshredder/internal/oracle"
	"silentshredder/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, dispatches the
// selected mode, and returns the process exit code (0 clean, 1 leak or
// runtime failure, 2 usage error).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("leakscan", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		image   = fs.String("image", "", "DIMM image / checkpoint file (required unless -crash or -attack)")
		pattern = fs.String("pattern", "", "plaintext pattern to scan for")
		entropy = fs.Bool("entropy", false, "print per-page byte-entropy summary")
		scale   = fs.Int("scale", 64, "cache scale of the simulated machine")
		crash   = fs.Int("crash", 0, "scan post-crash recovered images: power-cut a seeded workload at this many write indices")
		seed    = fs.Int64("seed", 42, "workload seed for -crash and -attack")
		attack  = fs.String("attack", "", "run the adversary engine: all or a comma-separated subset of remanence,scavenger,replay")
		pers    = fs.String("personality", "merkle", "defender personality for -attack: plain | encrypted | merkle")
		policy  = fs.String("policy", "zero-cost", "physical shred policy for -attack: zero-cost | duty-to-delete | multi-pass")
		format  = fs.String("format", "text", "findings report: text | json")
	)
	var profCfg obs.ProfileConfig
	profCfg.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch *format {
	case "text", "json":
	default:
		fmt.Fprintf(stderr, "leakscan: unknown format %q (want text or json)\n", *format)
		return 2
	}
	stopProf, perr := profCfg.Start()
	if perr != nil {
		fmt.Fprintln(stderr, "leakscan: "+perr.Error())
		return 1
	}
	defer stopProf()

	if *attack != "" {
		attacks, err := adversary.ParseAttackers(*attack)
		if err != nil {
			fmt.Fprintln(stderr, "leakscan: "+err.Error())
			return 2
		}
		p, err := adversary.ParsePersonality(*pers)
		if err != nil {
			fmt.Fprintln(stderr, "leakscan: "+err.Error())
			return 2
		}
		pol, err := memctrl.ParseShredPolicy(*policy)
		if err != nil {
			fmt.Fprintln(stderr, "leakscan: "+err.Error())
			return 2
		}
		return attackScan(stdout, stderr, *scale, *seed, p, pol, attacks, *format)
	}
	if *crash > 0 {
		return crashScan(stdout, stderr, *scale, *seed, *crash, *format)
	}
	if *image == "" || (*pattern == "" && !*entropy) {
		fs.Usage()
		return 2
	}
	return imageScan(stdout, stderr, *image, *pattern, *entropy, *scale, *format)
}

// entropyPage is one page's byte-entropy finding.
type entropyPage struct {
	Page        uint64  `json:"page"`
	BitsPerByte float64 `json:"bits_per_byte"`
}

// imageReport is the machine-readable result of an image scan.
type imageReport struct {
	Image        string        `json:"image"`
	Pattern      string        `json:"pattern,omitempty"`
	PagesScanned int           `json:"pages_scanned"`
	LeakPages    []uint64      `json:"leak_pages"`
	Clean        bool          `json:"clean"`
	Lowest       []entropyPage `json:"lowest_entropy_pages,omitempty"`
	Highest      *entropyPage  `json:"highest_entropy_page,omitempty"`
}

func imageScan(stdout, stderr io.Writer, image, pattern string, entropy bool, scale int, format string) int {
	f, err := os.Open(image)
	if err != nil {
		fmt.Fprintln(stderr, "leakscan: "+err.Error())
		return 1
	}
	defer f.Close()

	// Load the image into a machine shell: leakscan only inspects the
	// device contents, never the decrypting datapath — the adversary has
	// the DIMM, not the processor.
	cfg := sim.ScaledConfig(memctrl.SilentShredder, kernel.ZeroShred, scale)
	cfg.Hier.Cores = 1
	m, err := sim.New(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "leakscan: "+err.Error())
		return 1
	}
	if err := m.LoadMemoryState(f); err != nil {
		fmt.Fprintln(stderr, "leakscan: "+err.Error())
		return 1
	}

	rep := imageReport{Image: image, Pattern: pattern, LeakPages: []uint64{}}
	var ents []entropyPage
	m.Dev.ForEachPage(func(p addr.PageNum, data *[addr.PageSize]byte) {
		rep.PagesScanned++
		if pattern != "" && bytes.Contains(data[:], []byte(pattern)) {
			rep.LeakPages = append(rep.LeakPages, uint64(p))
			if format == "text" {
				fmt.Fprintf(stdout, "LEAK: pattern found in page %v\n", p)
			}
		}
		if entropy {
			ents = append(ents, entropyPage{uint64(p), byteEntropy(data[:])})
		}
	})
	rep.Clean = len(rep.LeakPages) == 0
	if entropy {
		sort.Slice(ents, func(i, j int) bool { return ents[i].BitsPerByte < ents[j].BitsPerByte })
		for i := 0; i < len(ents) && i < 8; i++ {
			rep.Lowest = append(rep.Lowest, ents[i])
		}
		if n := len(ents); n > 0 {
			rep.Highest = &ents[n-1]
		}
	}

	if format == "json" {
		if err := writeJSON(stdout, rep); err != nil {
			fmt.Fprintln(stderr, "leakscan: "+err.Error())
			return 1
		}
		if !rep.Clean {
			return 1
		}
		return 0
	}

	fmt.Fprintf(stdout, "scanned %d resident pages\n", rep.PagesScanned)
	code := 0
	if pattern != "" {
		if rep.Clean {
			fmt.Fprintf(stdout, "pattern %q not found: the DIMM holds no such plaintext\n", pattern)
		} else {
			fmt.Fprintf(stdout, "%d page(s) leak the pattern\n", len(rep.LeakPages))
			code = 1
		}
	}
	if entropy {
		fmt.Fprintln(stdout, "\nlowest-entropy pages (plaintext and zeroed pages rank lowest):")
		for _, e := range rep.Lowest {
			fmt.Fprintf(stdout, "  %v  %.3f bits/byte\n", addr.PageNum(e.Page), e.BitsPerByte)
		}
		if rep.Highest != nil {
			fmt.Fprintf(stdout, "highest: %v  %.3f bits/byte (ciphertext approaches 8.0)\n",
				addr.PageNum(rep.Highest.Page), rep.Highest.BitsPerByte)
		}
	}
	return code
}

// crashCut is one crash point's finding.
type crashCut struct {
	Label        string `json:"label"`
	WriteIndex   uint64 `json:"write_index"`
	Quiescence   bool   `json:"quiescence,omitempty"`
	Crashed      bool   `json:"crashed"`
	PagesScanned int    `json:"pages_scanned"`
	Leak         bool   `json:"leak"`
	Error        string `json:"error,omitempty"`
}

// crashReport is the machine-readable result of a -crash sweep.
type crashReport struct {
	Seed         int64      `json:"seed"`
	Points       int        `json:"points"`
	DeviceWrites uint64     `json:"device_writes"`
	Forbidden    int        `json:"forbidden_fingerprints"`
	Cuts         []crashCut `json:"cuts"`
	Leaks        int        `json:"leaks"`
	Clean        bool       `json:"clean"`
}

// crashScan is the post-crash forensics mode: replay a seeded workload on
// a crash-safe Silent Shredder machine (write-through counter cache, so
// shred effects persist eagerly and every cut point is covered), power-cut
// at evenly spaced device-write indices, recover, and scan each recovered
// image for pre-shred plaintext. The scan itself is the persistent-state
// projection check: every fingerprintable 64-byte block of every page a
// completed shred cleared is forbidden to resurface.
func crashScan(stdout, stderr io.Writer, scale int, seed int64, points int, format string) int {
	w := oracle.Generate(oracle.DefaultGenConfig(seed))
	cfg := sim.ScaledConfig(memctrl.SilentShredder, kernel.ZeroShred, scale)
	cfg.Hier.Cores = 2
	cfg.MemPages = 8192
	cfg.StoreData = true
	cfg.MemCtrl.CounterCache.WriteThrough = true

	// Quiescent run: measures the write-index domain of the schedule.
	_, base, err := sim.ReplayToCrash(cfg, w, ^uint64(0))
	if err != nil {
		fmt.Fprintln(stderr, "leakscan: "+err.Error())
		return 1
	}
	rep := crashReport{Seed: seed, Points: points, DeviceWrites: base.Writes, Forbidden: base.Forbidden}
	if format == "text" {
		fmt.Fprintf(stdout, "workload seed %d: %d device writes, %d forbidden pre-shred fingerprints\n",
			seed, base.Writes, base.Forbidden)
	}

	for i := 0; i <= points; i++ {
		idx := ^uint64(0)
		label := "quiescence"
		if i < points {
			idx = uint64(i) * base.Writes / uint64(points)
			label = fmt.Sprintf("write %d", idx)
		}
		cut := crashCut{Label: label, WriteIndex: idx, Quiescence: i == points}
		m, out, err := sim.ReplayToCrash(cfg, w, idx)
		if err != nil {
			cut.Leak = true
			cut.Error = err.Error()
			rep.Leaks++
			rep.Cuts = append(rep.Cuts, cut)
			if format == "text" {
				fmt.Fprintf(stdout, "LEAK at %s (op %d): %v\n", label, out.OpIndex, err)
			}
			continue
		}
		m.Img.ForEachPage(func(addr.PageNum, *[addr.PageSize]byte) { cut.PagesScanned++ })
		cut.Crashed = out.Crashed
		rep.Cuts = append(rep.Cuts, cut)
		if format == "text" {
			state := "mid-op crash"
			if !out.Crashed {
				state = "clean cut"
			}
			fmt.Fprintf(stdout, "  %-16s %s, recovered image clean (%d pages scanned)\n", label+":", state, cut.PagesScanned)
		}
	}
	rep.Clean = rep.Leaks == 0

	if format == "json" {
		if err := writeJSON(stdout, rep); err != nil {
			fmt.Fprintln(stderr, "leakscan: "+err.Error())
			return 1
		}
		if !rep.Clean {
			return 1
		}
		return 0
	}
	if rep.Leaks > 0 {
		fmt.Fprintf(stdout, "%d crash point(s) leaked pre-shred plaintext\n", rep.Leaks)
		return 1
	}
	fmt.Fprintf(stdout, "no pre-shred plaintext resurfaced at any of %d crash points\n", points+1)
	return 0
}

// attackReport is the machine-readable result of an -attack run.
type attackReport struct {
	adversary.Result
	TotalLeaked int  `json:"total_leaked_bytes"`
	Clean       bool `json:"clean"`
}

// attackScan is the adversarial-driver mode: run the selected attackers
// against one (personality, policy) defender and score the results. The
// exit code is 1 exactly when any attacker recovered forbidden bytes.
func attackScan(stdout, stderr io.Writer, scale int, seed int64, pers adversary.Personality,
	policy memctrl.ShredPolicy, attacks []adversary.Attacker, format string) int {
	res, err := adversary.Run(adversary.Config{
		Seed:        seed,
		Scale:       scale,
		Personality: pers,
		Policy:      policy,
	}, attacks)
	if err != nil {
		fmt.Fprintln(stderr, "leakscan: "+err.Error())
		return 1
	}
	rep := attackReport{Result: res, TotalLeaked: res.TotalLeaked(), Clean: res.TotalLeaked() == 0}

	if format == "json" {
		if err := writeJSON(stdout, rep); err != nil {
			fmt.Fprintln(stderr, "leakscan: "+err.Error())
			return 1
		}
		if !rep.Clean {
			return 1
		}
		return 0
	}

	fmt.Fprintf(stdout, "adversary: %s defender, %s shredding, seed %d (%d forbidden fingerprints)\n",
		res.Personality, res.Policy, res.Seed, res.Stats.Forbidden)
	fmt.Fprintf(stdout, "  run cost: %d shreds, %d scrub writes, %d device writes\n",
		res.Stats.ShredCommands, res.Stats.ScrubWrites, res.Stats.DeviceWrites)
	for _, o := range []*adversary.Outcome{res.Remanence, res.Scavenger, res.Replay} {
		if o == nil {
			continue
		}
		switch {
		case o.Detected:
			fmt.Fprintf(stdout, "  %-10s %d attempt(s), DETECTED: %s\n", o.Attacker+":", o.Attempts, o.Detection)
		case o.LeakedBytes > 0:
			fmt.Fprintf(stdout, "  %-10s %d attempt(s), LEAKED %d byte(s)\n", o.Attacker+":", o.Attempts, o.LeakedBytes)
		default:
			fmt.Fprintf(stdout, "  %-10s %d attempt(s), defeated (0 bytes recovered)\n", o.Attacker+":", o.Attempts)
		}
	}
	if !rep.Clean {
		fmt.Fprintf(stdout, "ATTACK SUCCEEDED: %d pre-shred byte(s) recovered\n", rep.TotalLeaked)
		return 1
	}
	fmt.Fprintln(stdout, "no attacker recovered any pre-shred byte")
	return 0
}

// writeJSON renders one findings report to stdout.
func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// byteEntropy computes the Shannon entropy of the page in bits per byte.
func byteEntropy(data []byte) float64 {
	var counts [256]int
	for _, b := range data {
		counts[b]++
	}
	h := 0.0
	n := float64(len(data))
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}
