// Command leakscan is the attack-model forensics tool: it walks a DIMM
// image (a memory-state checkpoint written by shredsim -save-nvm or
// sim.SaveMemoryState) the way an adversary with physical access would —
// scanning raw cells for plaintext — and reports what it finds.
//
// On a correctly operating secure controller the data region contains
// only ciphertext, so a scan for any plaintext pattern comes up empty;
// the tool exists to demonstrate (and regression-check) exactly that.
//
//	leakscan -image dimm.img -pattern "BEGIN RSA PRIVATE KEY"
//	leakscan -image dimm.img -entropy   # per-page byte-entropy summary
//
// With -crash N the tool scans post-crash recovered images instead of a
// checkpoint: it replays a seeded workload on a crash-safe Silent
// Shredder machine, cuts power at N evenly spaced device-write indices
// (plus quiescence), recovers each time, and scans every recovered image
// for pre-shred plaintext — bytes that a completed shred promised were
// gone. Any hit is a leak and exits nonzero.
//
//	leakscan -crash 16 -seed 42
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"silentshredder/internal/addr"
	"silentshredder/internal/kernel"
	"silentshredder/internal/memctrl"
	"silentshredder/internal/oracle"
	"silentshredder/internal/sim"
)

func main() {
	var (
		image   = flag.String("image", "", "DIMM image / checkpoint file (required unless -crash)")
		pattern = flag.String("pattern", "", "plaintext pattern to scan for")
		entropy = flag.Bool("entropy", false, "print per-page byte-entropy summary")
		scale   = flag.Int("scale", 64, "cache scale of the machine the image is loaded into")
		crash   = flag.Int("crash", 0, "scan post-crash recovered images: power-cut a seeded workload at this many write indices")
		seed    = flag.Int64("seed", 42, "workload seed for -crash")
	)
	flag.Parse()
	if *crash > 0 {
		crashScan(*scale, *seed, *crash)
		return
	}
	if *image == "" || (*pattern == "" && !*entropy) {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*image)
	if err != nil {
		fatal(err.Error())
	}
	defer f.Close()

	// Load the image into a machine shell: leakscan only inspects the
	// device contents, never the decrypting datapath — the adversary has
	// the DIMM, not the processor.
	cfg := sim.ScaledConfig(memctrl.SilentShredder, kernel.ZeroShred, *scale)
	cfg.Hier.Cores = 1
	m, err := sim.New(cfg)
	if err != nil {
		fatal(err.Error())
	}
	if err := m.LoadMemoryState(f); err != nil {
		fatal(err.Error())
	}

	pages := 0
	hits := 0
	type pageEnt struct {
		page addr.PageNum
		ent  float64
	}
	var ents []pageEnt
	m.Dev.ForEachPage(func(p addr.PageNum, data *[addr.PageSize]byte) {
		pages++
		if *pattern != "" && bytes.Contains(data[:], []byte(*pattern)) {
			hits++
			fmt.Printf("LEAK: pattern found in page %v\n", p)
		}
		if *entropy {
			ents = append(ents, pageEnt{p, byteEntropy(data[:])})
		}
	})

	fmt.Printf("scanned %d resident pages\n", pages)
	if *pattern != "" {
		if hits == 0 {
			fmt.Printf("pattern %q not found: the DIMM holds no such plaintext\n", *pattern)
		} else {
			fmt.Printf("%d page(s) leak the pattern\n", hits)
			os.Exit(1)
		}
	}
	if *entropy {
		sort.Slice(ents, func(i, j int) bool { return ents[i].ent < ents[j].ent })
		fmt.Println("\nlowest-entropy pages (plaintext and zeroed pages rank lowest):")
		for i := 0; i < len(ents) && i < 8; i++ {
			fmt.Printf("  %v  %.3f bits/byte\n", ents[i].page, ents[i].ent)
		}
		if n := len(ents); n > 0 {
			fmt.Printf("highest: %v  %.3f bits/byte (ciphertext approaches 8.0)\n",
				ents[n-1].page, ents[n-1].ent)
		}
	}
}

// crashScan is the post-crash forensics mode: replay a seeded workload on
// a crash-safe Silent Shredder machine (write-through counter cache, so
// shred effects persist eagerly and every cut point is covered), power-cut
// at evenly spaced device-write indices, recover, and scan each recovered
// image for pre-shred plaintext. The scan itself is the persistent-state
// projection check: every fingerprintable 64-byte block of every page a
// completed shred cleared is forbidden to resurface.
func crashScan(scale int, seed int64, points int) {
	w := oracle.Generate(oracle.DefaultGenConfig(seed))
	cfg := sim.ScaledConfig(memctrl.SilentShredder, kernel.ZeroShred, scale)
	cfg.Hier.Cores = 2
	cfg.MemPages = 8192
	cfg.StoreData = true
	cfg.MemCtrl.CounterCache.WriteThrough = true

	// Quiescent run: measures the write-index domain of the schedule.
	_, base, err := sim.ReplayToCrash(cfg, w, ^uint64(0))
	if err != nil {
		fatal(err.Error())
	}
	fmt.Printf("workload seed %d: %d device writes, %d forbidden pre-shred fingerprints\n",
		seed, base.Writes, base.Forbidden)

	leaks := 0
	for i := 0; i <= points; i++ {
		idx := ^uint64(0)
		label := "quiescence"
		if i < points {
			idx = uint64(i) * base.Writes / uint64(points)
			label = fmt.Sprintf("write %d", idx)
		}
		m, out, err := sim.ReplayToCrash(cfg, w, idx)
		if err != nil {
			leaks++
			fmt.Printf("LEAK at %s (op %d): %v\n", label, out.OpIndex, err)
			continue
		}
		pages := 0
		m.Img.ForEachPage(func(addr.PageNum, *[addr.PageSize]byte) { pages++ })
		state := "mid-op crash"
		if !out.Crashed {
			state = "clean cut"
		}
		fmt.Printf("  %-16s %s, recovered image clean (%d pages scanned)\n", label+":", state, pages)
	}
	if leaks > 0 {
		fmt.Printf("%d crash point(s) leaked pre-shred plaintext\n", leaks)
		os.Exit(1)
	}
	fmt.Printf("no pre-shred plaintext resurfaced at any of %d crash points\n", points+1)
}

// byteEntropy computes the Shannon entropy of the page in bits per byte.
func byteEntropy(data []byte) float64 {
	var counts [256]int
	for _, b := range data {
		counts[b]++
	}
	h := 0.0
	n := float64(len(data))
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "leakscan: "+msg)
	os.Exit(1)
}
