// Command leakscan is the attack-model forensics tool: it walks a DIMM
// image (a memory-state checkpoint written by shredsim -save-nvm or
// sim.SaveMemoryState) the way an adversary with physical access would —
// scanning raw cells for plaintext — and reports what it finds.
//
// On a correctly operating secure controller the data region contains
// only ciphertext, so a scan for any plaintext pattern comes up empty;
// the tool exists to demonstrate (and regression-check) exactly that.
//
//	leakscan -image dimm.img -pattern "BEGIN RSA PRIVATE KEY"
//	leakscan -image dimm.img -entropy   # per-page byte-entropy summary
//	leakscan -image dimm.img -pattern secret -format json  # machine-readable
//
// With -crash N the tool scans post-crash recovered images instead of a
// checkpoint: it replays a seeded workload on a crash-safe Silent
// Shredder machine, cuts power at N evenly spaced device-write indices
// (plus quiescence), recovers each time, and scans every recovered image
// for pre-shred plaintext — bytes that a completed shred promised were
// gone. Any hit is a leak and exits nonzero.
//
//	leakscan -crash 16 -seed 42
//
// -format json replaces the human narration with one JSON findings
// report on stdout (same exit codes), for CI and downstream tooling.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"silentshredder/internal/addr"
	"silentshredder/internal/kernel"
	"silentshredder/internal/memctrl"
	"silentshredder/internal/obs"
	"silentshredder/internal/oracle"
	"silentshredder/internal/sim"
)

func main() {
	var (
		image   = flag.String("image", "", "DIMM image / checkpoint file (required unless -crash)")
		pattern = flag.String("pattern", "", "plaintext pattern to scan for")
		entropy = flag.Bool("entropy", false, "print per-page byte-entropy summary")
		scale   = flag.Int("scale", 64, "cache scale of the machine the image is loaded into")
		crash   = flag.Int("crash", 0, "scan post-crash recovered images: power-cut a seeded workload at this many write indices")
		seed    = flag.Int64("seed", 42, "workload seed for -crash")
		format  = flag.String("format", "text", "findings report: text | json")
	)
	var profCfg obs.ProfileConfig
	profCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()

	switch *format {
	case "text", "json":
	default:
		fatal(fmt.Sprintf("unknown format %q (want text or json)", *format))
	}
	stopProf, perr := profCfg.Start()
	if perr != nil {
		fatal(perr.Error())
	}
	defer stopProf()

	if *crash > 0 {
		crashScan(*scale, *seed, *crash, *format)
		return
	}
	if *image == "" || (*pattern == "" && !*entropy) {
		flag.Usage()
		os.Exit(2)
	}
	imageScan(*image, *pattern, *entropy, *scale, *format)
}

// entropyPage is one page's byte-entropy finding.
type entropyPage struct {
	Page        uint64  `json:"page"`
	BitsPerByte float64 `json:"bits_per_byte"`
}

// imageReport is the machine-readable result of an image scan.
type imageReport struct {
	Image        string        `json:"image"`
	Pattern      string        `json:"pattern,omitempty"`
	PagesScanned int           `json:"pages_scanned"`
	LeakPages    []uint64      `json:"leak_pages"`
	Clean        bool          `json:"clean"`
	Lowest       []entropyPage `json:"lowest_entropy_pages,omitempty"`
	Highest      *entropyPage  `json:"highest_entropy_page,omitempty"`
}

func imageScan(image, pattern string, entropy bool, scale int, format string) {
	f, err := os.Open(image)
	if err != nil {
		fatal(err.Error())
	}
	defer f.Close()

	// Load the image into a machine shell: leakscan only inspects the
	// device contents, never the decrypting datapath — the adversary has
	// the DIMM, not the processor.
	cfg := sim.ScaledConfig(memctrl.SilentShredder, kernel.ZeroShred, scale)
	cfg.Hier.Cores = 1
	m, err := sim.New(cfg)
	if err != nil {
		fatal(err.Error())
	}
	if err := m.LoadMemoryState(f); err != nil {
		fatal(err.Error())
	}

	rep := imageReport{Image: image, Pattern: pattern, LeakPages: []uint64{}}
	var ents []entropyPage
	m.Dev.ForEachPage(func(p addr.PageNum, data *[addr.PageSize]byte) {
		rep.PagesScanned++
		if pattern != "" && bytes.Contains(data[:], []byte(pattern)) {
			rep.LeakPages = append(rep.LeakPages, uint64(p))
			if format == "text" {
				fmt.Printf("LEAK: pattern found in page %v\n", p)
			}
		}
		if entropy {
			ents = append(ents, entropyPage{uint64(p), byteEntropy(data[:])})
		}
	})
	rep.Clean = len(rep.LeakPages) == 0
	if entropy {
		sort.Slice(ents, func(i, j int) bool { return ents[i].BitsPerByte < ents[j].BitsPerByte })
		for i := 0; i < len(ents) && i < 8; i++ {
			rep.Lowest = append(rep.Lowest, ents[i])
		}
		if n := len(ents); n > 0 {
			rep.Highest = &ents[n-1]
		}
	}

	if format == "json" {
		writeJSON(rep)
		if !rep.Clean {
			os.Exit(1)
		}
		return
	}

	fmt.Printf("scanned %d resident pages\n", rep.PagesScanned)
	if pattern != "" {
		if rep.Clean {
			fmt.Printf("pattern %q not found: the DIMM holds no such plaintext\n", pattern)
		} else {
			fmt.Printf("%d page(s) leak the pattern\n", len(rep.LeakPages))
			os.Exit(1)
		}
	}
	if entropy {
		fmt.Println("\nlowest-entropy pages (plaintext and zeroed pages rank lowest):")
		for _, e := range rep.Lowest {
			fmt.Printf("  %v  %.3f bits/byte\n", addr.PageNum(e.Page), e.BitsPerByte)
		}
		if rep.Highest != nil {
			fmt.Printf("highest: %v  %.3f bits/byte (ciphertext approaches 8.0)\n",
				addr.PageNum(rep.Highest.Page), rep.Highest.BitsPerByte)
		}
	}
}

// crashCut is one crash point's finding.
type crashCut struct {
	Label        string `json:"label"`
	WriteIndex   uint64 `json:"write_index"`
	Quiescence   bool   `json:"quiescence,omitempty"`
	Crashed      bool   `json:"crashed"`
	PagesScanned int    `json:"pages_scanned"`
	Leak         bool   `json:"leak"`
	Error        string `json:"error,omitempty"`
}

// crashReport is the machine-readable result of a -crash sweep.
type crashReport struct {
	Seed         int64      `json:"seed"`
	Points       int        `json:"points"`
	DeviceWrites uint64     `json:"device_writes"`
	Forbidden    int        `json:"forbidden_fingerprints"`
	Cuts         []crashCut `json:"cuts"`
	Leaks        int        `json:"leaks"`
	Clean        bool       `json:"clean"`
}

// crashScan is the post-crash forensics mode: replay a seeded workload on
// a crash-safe Silent Shredder machine (write-through counter cache, so
// shred effects persist eagerly and every cut point is covered), power-cut
// at evenly spaced device-write indices, recover, and scan each recovered
// image for pre-shred plaintext. The scan itself is the persistent-state
// projection check: every fingerprintable 64-byte block of every page a
// completed shred cleared is forbidden to resurface.
func crashScan(scale int, seed int64, points int, format string) {
	w := oracle.Generate(oracle.DefaultGenConfig(seed))
	cfg := sim.ScaledConfig(memctrl.SilentShredder, kernel.ZeroShred, scale)
	cfg.Hier.Cores = 2
	cfg.MemPages = 8192
	cfg.StoreData = true
	cfg.MemCtrl.CounterCache.WriteThrough = true

	// Quiescent run: measures the write-index domain of the schedule.
	_, base, err := sim.ReplayToCrash(cfg, w, ^uint64(0))
	if err != nil {
		fatal(err.Error())
	}
	rep := crashReport{Seed: seed, Points: points, DeviceWrites: base.Writes, Forbidden: base.Forbidden}
	if format == "text" {
		fmt.Printf("workload seed %d: %d device writes, %d forbidden pre-shred fingerprints\n",
			seed, base.Writes, base.Forbidden)
	}

	for i := 0; i <= points; i++ {
		idx := ^uint64(0)
		label := "quiescence"
		if i < points {
			idx = uint64(i) * base.Writes / uint64(points)
			label = fmt.Sprintf("write %d", idx)
		}
		cut := crashCut{Label: label, WriteIndex: idx, Quiescence: i == points}
		m, out, err := sim.ReplayToCrash(cfg, w, idx)
		if err != nil {
			cut.Leak = true
			cut.Error = err.Error()
			rep.Leaks++
			rep.Cuts = append(rep.Cuts, cut)
			if format == "text" {
				fmt.Printf("LEAK at %s (op %d): %v\n", label, out.OpIndex, err)
			}
			continue
		}
		m.Img.ForEachPage(func(addr.PageNum, *[addr.PageSize]byte) { cut.PagesScanned++ })
		cut.Crashed = out.Crashed
		rep.Cuts = append(rep.Cuts, cut)
		if format == "text" {
			state := "mid-op crash"
			if !out.Crashed {
				state = "clean cut"
			}
			fmt.Printf("  %-16s %s, recovered image clean (%d pages scanned)\n", label+":", state, cut.PagesScanned)
		}
	}
	rep.Clean = rep.Leaks == 0

	if format == "json" {
		writeJSON(rep)
		if !rep.Clean {
			os.Exit(1)
		}
		return
	}
	if rep.Leaks > 0 {
		fmt.Printf("%d crash point(s) leaked pre-shred plaintext\n", rep.Leaks)
		os.Exit(1)
	}
	fmt.Printf("no pre-shred plaintext resurfaced at any of %d crash points\n", points+1)
}

// writeJSON renders one findings report to stdout.
func writeJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err.Error())
	}
}

// byteEntropy computes the Shannon entropy of the page in bits per byte.
func byteEntropy(data []byte) float64 {
	var counts [256]int
	for _, b := range data {
		counts[b]++
	}
	h := 0.0
	n := float64(len(data))
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "leakscan: "+msg)
	os.Exit(1)
}
