// Command shredmon is the live telemetry monitor: it brings up the
// /metrics and /healthz endpoints first, then runs the configured
// workloads in a continuous loop — one fresh machine per round — and
// republishes every run's statistics registry and latency-provenance
// aggregate after each round. Scrape it with Prometheus (or curl) while
// the simulations run:
//
//	shredmon -addr :9121 -workload pagerank,mcf -quick &
//	curl -s localhost:9121/metrics | grep shredsim_span
//
// Unlike shredsim -serve (which publishes one finished run and then
// serves), shredmon keeps simulating: the exported counters move
// between scrapes, which is what makes the endpoint live. The
// simulation loop is sequential and deterministic; only the publishing
// instant depends on wall-clock scrape timing.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"

	"silentshredder/internal/exper"
	"silentshredder/internal/kernel"
	"silentshredder/internal/memctrl"
	"silentshredder/internal/span"
	"silentshredder/internal/telemetry"
)

func main() {
	var (
		addr     = flag.String("addr", ":9121", "listen address for /metrics and /healthz")
		workload = flag.String("workload", "pagerank", "workload(s) to loop, comma-separated")
		mode     = flag.String("mode", "ss", "memory controller: ss | baseline")
		cores    = flag.Int("cores", 2, "simulated cores per run")
		scale    = flag.Int("scale", 64, "divide Table 1 cache capacities by this factor")
		quick    = flag.Bool("quick", false, "shrink the workloads")
		rounds   = flag.Int("rounds", 0, "stop after this many rounds over the workload list (0 = run until interrupted)")
		spans    = flag.Bool("spans", true, "attach a span recorder per run and export the latency-provenance metrics")
	)
	flag.Parse()

	mcMode, zm := memctrl.SilentShredder, kernel.ZeroShred
	switch *mode {
	case "ss", "silent-shredder":
	case "baseline":
		mcMode, zm = memctrl.Baseline, kernel.ZeroNonTemporal
	default:
		fmt.Fprintf(os.Stderr, "shredmon: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	names := strings.Split(*workload, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}

	var pub telemetry.Publisher
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shredmon: %v\n", err)
		os.Exit(1)
	}
	go func() {
		if err := http.Serve(ln, telemetry.Handler(&pub)); err != nil {
			fmt.Fprintf(os.Stderr, "shredmon: %v\n", err)
			os.Exit(1)
		}
	}()
	fmt.Fprintf(os.Stderr, "shredmon: serving /metrics and /healthz on http://%s\n", ln.Addr())

	o := exper.Options{Cores: *cores, Scale: *scale, Quick: *quick, Parallel: 1}
	samples := make([]telemetry.Sample, len(names))
	for round := 0; *rounds == 0 || round < *rounds; round++ {
		for i, name := range names {
			var rec *span.Recorder
			if *spans {
				rec = span.NewRecorder(span.Config{})
			}
			m, err := exper.RunWorkloadTweaked(o, name, mcMode, zm, exper.MachineTweaks{Spans: rec})
			if err != nil {
				fmt.Fprintf(os.Stderr, "shredmon: %s: %v\n", name, err)
				os.Exit(1)
			}
			s := telemetry.Sample{
				Run: name, Cycles: m.MaxCycles(), Instructions: m.TotalInstructions(),
				IPC: m.AggregateIPC(), Snap: m.Snapshot(),
			}
			if rec != nil {
				s.Spans = rec.Aggregate()
			}
			samples[i] = s
			// Publish a fresh slice each time: the previous one may be
			// mid-render in a scrape handler.
			pub.Publish(append([]telemetry.Sample(nil), samples...))
		}
		fmt.Fprintf(os.Stderr, "shredmon: round %d done (%d runs published)\n", round+1, len(names))
	}
}
