package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkPadInto-8   13528038    88.53 ns/op   722.94 MB/s   0 B/op   0 allocs/op")
	if !ok {
		t.Fatal("well-formed line must parse")
	}
	if b.Name != "BenchmarkPadInto-8" || b.Iterations != 13528038 || b.NsPerOp != 88.53 {
		t.Fatalf("parsed %+v", b)
	}
	if b.MBPerS == nil || *b.MBPerS != 722.94 || b.BytesPerOp == nil || *b.BytesPerOp != 0 || b.AllocsPerOp == nil || *b.AllocsPerOp != 0 {
		t.Fatalf("unit columns lost: %+v", b)
	}

	// Custom b.ReportMetric columns land in Metrics.
	b, ok = parseLine("BenchmarkFig8-8   10   1200 ns/op   0.9700 write_savings")
	if !ok || b.Metrics["write_savings"] != 0.97 {
		t.Fatalf("custom metric lost: %+v ok=%v", b, ok)
	}

	for _, bad := range []string{
		"BenchmarkX-8",                  // too few fields
		"BenchmarkX-8 notanint 5 ns/op", // bad iteration count
		"BenchmarkX-8 10 garbage ns/op", // bad value
		"BenchmarkX-8 10 5 B/op",        // no ns/op at all
		"goos: linux",                   // not a result line
	} {
		if _, ok := parseLine(bad); ok {
			t.Errorf("parseLine(%q) must reject", bad)
		}
	}
}

func TestConvertAndCompare(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	raw := write("bench.txt", `goos: linux
pkg: silentshredder/internal/ctr
BenchmarkPadInto-8   1000   100.0 ns/op   0 B/op   0 allocs/op
BenchmarkCachedPadHit-8   2000   50.0 ns/op   0 B/op   0 allocs/op
pkg: silentshredder/internal/nvm
BenchmarkReadBlock-8   500   400.0 ns/op   0 B/op   0 allocs/op
`)
	base := filepath.Join(dir, "base.json")
	if err := convert(raw, base); err != nil {
		t.Fatal(err)
	}
	f, err := load(base)
	if err != nil {
		t.Fatal(err)
	}
	if f.Schema != "silentshredder-bench/v1" || len(f.Benchmarks) != 3 {
		t.Fatalf("snapshot = %+v", f)
	}
	// Sorted by package then name; packages must survive the round trip.
	if f.Benchmarks[0].Package != "silentshredder/internal/ctr" || f.Benchmarks[0].Name != "BenchmarkCachedPadHit-8" {
		t.Fatalf("first benchmark = %+v", f.Benchmarks[0])
	}

	// Identical files compare clean.
	if code := compareFiles(base, base, 1.30); code != 0 {
		t.Fatalf("self-compare exit = %d", code)
	}

	// A 2x ns/op slowdown and an alloc increase must both fail the gate.
	slow := write("slow.txt", `pkg: silentshredder/internal/ctr
BenchmarkPadInto-8   1000   200.0 ns/op   0 B/op   0 allocs/op
BenchmarkCachedPadHit-8   2000   50.0 ns/op   16 B/op   1 allocs/op
`)
	slowJSON := filepath.Join(dir, "slow.json")
	if err := convert(slow, slowJSON); err != nil {
		t.Fatal(err)
	}
	if code := compareFiles(base, slowJSON, 1.30); code != 1 {
		t.Fatalf("regression compare exit = %d, want 1", code)
	}
	// With a loose threshold the slowdown passes but the alloc increase
	// must still fail: allocations are compared exactly.
	if code := compareFiles(base, slowJSON, 3.0); code != 1 {
		t.Fatalf("alloc regression exit = %d, want 1", code)
	}

	// Nonzero alloc baselines get one alloc of rounding slack (allocs/op
	// is total/b.N, so one-time init flips the rounded value by one
	// between identical binaries); two extra allocs still fail.
	allocBase := write("allocbase.txt", `pkg: silentshredder/internal/sim
BenchmarkProfileRun-8   150   7000.0 ns/op   700 B/op   285 allocs/op
`)
	allocBaseJSON := filepath.Join(dir, "allocbase.json")
	if err := convert(allocBase, allocBaseJSON); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		allocs string
		want   int
	}{
		{"286", 0},
		{"287", 1},
	} {
		jitter := write("jitter.txt", `pkg: silentshredder/internal/sim
BenchmarkProfileRun-8   151   7000.0 ns/op   700 B/op   `+tc.allocs+` allocs/op
`)
		jitterJSON := filepath.Join(dir, "jitter.json")
		if err := convert(jitter, jitterJSON); err != nil {
			t.Fatal(err)
		}
		if code := compareFiles(allocBaseJSON, jitterJSON, 1.30); code != tc.want {
			t.Fatalf("285 -> %s allocs/op compare exit = %d, want %d", tc.allocs, code, tc.want)
		}
	}

	// Error paths: empty input, missing file, disjoint benchmark sets.
	empty := write("empty.txt", "goos: linux\n")
	if err := convert(empty, filepath.Join(dir, "e.json")); err == nil {
		t.Fatal("empty transcript must error")
	}
	if code := compareFiles(base, filepath.Join(dir, "missing.json"), 1.30); code != 2 {
		t.Fatal("missing file must exit 2")
	}
	other := write("other.txt", `pkg: elsewhere
BenchmarkUnrelated-8   10   1.0 ns/op
`)
	otherJSON := filepath.Join(dir, "other.json")
	if err := convert(other, otherJSON); err != nil {
		t.Fatal(err)
	}
	if code := compareFiles(base, otherJSON, 1.30); code != 2 {
		t.Fatal("no overlapping benchmarks must exit 2")
	}
}

// TestNoiseWaivers: a waived benchmark may exceed the global threshold
// up to its documented limit — reported as visibly waived, never
// silently green — while unwaived benchmarks and the waiver's own limit
// still gate. Matching strips the -N GOMAXPROCS suffix, since committed
// snapshots carry it inconsistently (BENCH_9.json has the suite-level
// Fig10 name bare).
func TestNoiseWaivers(t *testing.T) {
	if w, ok := noiseWaivers["BenchmarkFig10ReadSpeedup"]; !ok || w.Threshold < 1.30 {
		t.Fatalf("Fig10 waiver missing or tighter than the default gate: %+v", w)
	}
	snap := func(fig10, other float64) File {
		return File{Benchmarks: []Benchmark{
			{Name: "BenchmarkFig10ReadSpeedup", Package: "silentshredder", NsPerOp: fig10},
			{Name: "BenchmarkPadInto-8", Package: "silentshredder/internal/ctr", NsPerOp: other},
		}}
	}
	base := snap(100, 100)
	run := func(newF File) (int, string) {
		var buf strings.Builder
		code := compareSnapshots(&buf, base, newF, 1.30)
		return code, buf.String()
	}

	// 1.50x on the waived benchmark: over the 1.30 gate, under the 1.60
	// waiver — passes, and the report says so out loud.
	code, out := run(snap(150, 100))
	if code != 0 {
		t.Fatalf("waived 1.50x exit = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "ok (waived: ") || !strings.Contains(out, "bandwidth steal") {
		t.Fatalf("waived run not visibly waived:\n%s", out)
	}

	// Inside the global threshold the waiver text must NOT appear: plain ok.
	if code, out = run(snap(110, 100)); code != 0 || strings.Contains(out, "waived") {
		t.Fatalf("in-threshold run = %d, waiver text leaked:\n%s", code, out)
	}

	// Past the waiver's own limit it is a regression like any other.
	if code, out = run(snap(170, 100)); code != 1 || !strings.Contains(out, "REGRESSION") {
		t.Fatalf("1.70x exit = %d, want 1:\n%s", code, out)
	}

	// The waiver is per-benchmark: the same ratio on an unwaived
	// benchmark fails.
	if code, out = run(snap(100, 150)); code != 1 {
		t.Fatalf("unwaived 1.50x exit = %d, want 1:\n%s", code, out)
	}

	// Suffix form matches the same waiver entry.
	suffixBase := File{Benchmarks: []Benchmark{
		{Name: "BenchmarkFig10ReadSpeedup-8", Package: "silentshredder", NsPerOp: 100}}}
	suffixNew := File{Benchmarks: []Benchmark{
		{Name: "BenchmarkFig10ReadSpeedup-8", Package: "silentshredder", NsPerOp: 150}}}
	var buf strings.Builder
	if code := compareSnapshots(&buf, suffixBase, suffixNew, 1.30); code != 0 {
		t.Fatalf("suffixed waived benchmark exit = %d, want 0\n%s", code, buf.String())
	}
}

func TestBaseBenchName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkPadInto-8":        "BenchmarkPadInto",
		"BenchmarkPadInto-16":       "BenchmarkPadInto",
		"BenchmarkFig10ReadSpeedup": "BenchmarkFig10ReadSpeedup",
		"BenchmarkShred-To-Zero":    "BenchmarkShred-To-Zero", // non-numeric suffix kept
	} {
		if got := baseBenchName(in); got != want {
			t.Errorf("baseBenchName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestAllocsAllowed(t *testing.T) {
	cases := []struct {
		base, newVal float64
		ok           bool
	}{
		{0, 0, true},
		{0, 1, false}, // zero-alloc paths are pinned exactly
		{2, 3, true},  // one alloc of rounding slack
		{2, 4, false}, // two is a real new allocation
		{285, 286, true},
		{285, 288, false},
		{8829, 8833, true},  // sweep benchmark: 0.1% relative slack covers scheduling jitter
		{8829, 8839, false}, // but a per-op leak still fails
		{29274, 29276, true},
	}
	for _, c := range cases {
		if got := c.newVal <= allocsAllowed(c.base); got != c.ok {
			t.Errorf("allocsAllowed(%v) vs %v: pass=%v, want %v", c.base, c.newVal, got, c.ok)
		}
	}
}
