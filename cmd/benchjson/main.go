// Command benchjson converts `go test -bench` output into the committed
// BENCH_<n>.json trajectory format and compares two such files for
// regressions. It is self-contained on purpose: the repo pins its
// benchmark baseline without external tooling (no benchstat), so the
// comparison gate runs anywhere the Go toolchain does.
//
//	benchjson -in bench_output.txt -out BENCH_6.json
//	benchjson -compare BENCH_5.json BENCH_6.json -threshold 1.30
//
// Convert mode parses every benchmark result line (including custom
// b.ReportMetric columns) plus the pkg: headers, and stamps the file
// with a machine fingerprint (GOOS/GOARCH/CPU count/CPU model/Go
// version) so trajectory files from different hosts are never compared
// silently. Compare mode diffs ns/op for benchmarks present in both
// files and exits nonzero if any regresses past the threshold ratio;
// alloc counts are compared exactly (a new steady-state allocation is a
// regression at any magnitude).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// File is the persisted benchmark snapshot.
type File struct {
	Schema     string      `json:"schema"`
	GoVersion  string      `json:"go_version"`
	Machine    Machine     `json:"machine"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Machine fingerprints the host the numbers came from.
type Machine struct {
	GOOS     string `json:"goos"`
	GOARCH   string `json:"goarch"`
	NumCPU   int    `json:"num_cpu"`
	CPUModel string `json:"cpu_model,omitempty"`
}

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string             `json:"name"`    // e.g. BenchmarkPadInto-8
	Package     string             `json:"package"` // e.g. silentshredder/internal/ctr
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"b_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	MBPerS      *float64           `json:"mb_per_s,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"` // custom b.ReportMetric units
}

func main() {
	in := flag.String("in", "bench_output.txt", "benchmark output to convert (`go test -bench` text)")
	out := flag.String("out", "", "write the JSON snapshot here (convert mode)")
	compare := flag.Bool("compare", false, "compare two snapshot files given as positional args")
	threshold := flag.Float64("threshold", 1.30, "compare: fail when new ns/op exceeds old by this ratio")
	flag.Parse()

	switch {
	case *compare:
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare OLD.json NEW.json [-threshold R]")
			os.Exit(2)
		}
		os.Exit(compareFiles(flag.Arg(0), flag.Arg(1), *threshold))
	case *out != "":
		if err := convert(*in, *out); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: benchjson -in bench_output.txt -out BENCH_n.json | -compare OLD NEW")
		os.Exit(2)
	}
}

func convert(inPath, outPath string) error {
	f, err := os.Open(inPath)
	if err != nil {
		return err
	}
	defer f.Close()

	snap := File{
		Schema:    "silentshredder-bench/v1",
		GoVersion: runtime.Version(),
		Machine: Machine{
			GOOS:     runtime.GOOS,
			GOARCH:   runtime.GOARCH,
			NumCPU:   runtime.NumCPU(),
			CPUModel: cpuModel(),
		},
	}

	pkg := ""
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, ok := parseLine(line)
		if !ok {
			continue
		}
		b.Package = pkg
		snap.Benchmarks = append(snap.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(snap.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark results found in %s", inPath)
	}
	sort.Slice(snap.Benchmarks, func(i, j int) bool {
		a, b := snap.Benchmarks[i], snap.Benchmarks[j]
		if a.Package != b.Package {
			return a.Package < b.Package
		}
		return a.Name < b.Name
	})
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchjson: wrote %d results to %s\n", len(snap.Benchmarks), outPath)
	return nil
}

// parseLine parses one result line:
//
//	BenchmarkName-8  100  123.4 ns/op  5.00 MB/s  16 B/op  2 allocs/op  0.97 write_savings
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	// The remainder alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = ptr(v)
		case "allocs/op":
			b.AllocsPerOp = ptr(v)
		case "MB/s":
			b.MBPerS = ptr(v)
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, b.NsPerOp > 0
}

func ptr(v float64) *float64 { return &v }

// cpuModel extracts the CPU model string from /proc/cpuinfo (best
// effort; empty on non-Linux hosts).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if k, v, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(k) == "model name" {
			return strings.TrimSpace(v)
		}
	}
	return ""
}

func load(path string) (File, error) {
	var f File
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// noiseWaiver documents one benchmark whose ns/op comparison is
// known-noisy for a structural reason: the waiver raises that
// benchmark's regression threshold and prints the reason next to the
// status, so a flagged-but-waived run is visibly waived rather than
// silently green. Waivers loosen ns/op only; the alloc comparison stays
// exact.
type noiseWaiver struct {
	// Threshold replaces the global -threshold for this benchmark when
	// it is looser (a waiver can never tighten the gate).
	Threshold float64
	// Reason is printed with the waived status and should say why the
	// noise is structural, not a regression.
	Reason string
}

// noiseWaivers is keyed by the base benchmark name — the -N GOMAXPROCS
// suffix stripped — because the committed snapshots are inconsistent
// about it: package-level benchmarks run via the suite land without the
// suffix (BENCH_9.json stores "BenchmarkFig10ReadSpeedup", package
// silentshredder), while per-package runs carry "-8".
var noiseWaivers = map[string]noiseWaiver{
	"BenchmarkFig10ReadSpeedup": {
		Threshold: 1.60,
		Reason: "in-suite bandwidth steal: measures a latency microbenchmark while the " +
			"sweep benchmarks saturate memory bandwidth around it; the PR 9 baseline " +
			"bump read 1.47x in-suite but 1.1x when run solo",
	},
}

// baseBenchName strips the trailing -N GOMAXPROCS suffix go test
// appends ("BenchmarkPadInto-8" -> "BenchmarkPadInto"); names without a
// numeric suffix pass through unchanged.
func baseBenchName(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func compareFiles(oldPath, newPath string, threshold float64) int {
	oldF, err := load(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	newF, err := load(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	return compareSnapshots(os.Stdout, oldF, newF, threshold)
}

// compareSnapshots diffs two loaded snapshots, writing the report to w,
// and returns the process exit code (0 clean, 1 regressions, 2 nothing
// to compare).
func compareSnapshots(w io.Writer, oldF, newF File, threshold float64) int {
	if oldF.Machine != newF.Machine {
		fmt.Fprintf(w, "note: machine fingerprints differ (%+v vs %+v); ns/op ratios are indicative only\n",
			oldF.Machine, newF.Machine)
	}

	oldByKey := map[string]Benchmark{}
	for _, b := range oldF.Benchmarks {
		oldByKey[b.Package+" "+b.Name] = b
	}

	regressions := 0
	compared := 0
	for _, nb := range newF.Benchmarks {
		ob, ok := oldByKey[nb.Package+" "+nb.Name]
		if !ok {
			continue
		}
		compared++
		ratio := nb.NsPerOp / ob.NsPerOp
		limit := threshold
		waiver, waived := noiseWaivers[baseBenchName(nb.Name)]
		if waived && waiver.Threshold > limit {
			limit = waiver.Threshold
		}
		status := "ok"
		switch {
		case ratio > limit:
			status = "REGRESSION"
			regressions++
		case waived && ratio > threshold:
			status = "ok (waived: " + waiver.Reason + ")"
		case ratio < 1/threshold:
			status = "improved"
		}
		fmt.Fprintf(w, "%-60s %12.1f -> %12.1f ns/op  %.2fx  %s\n", nb.Name, ob.NsPerOp, nb.NsPerOp, ratio, status)
		if ob.AllocsPerOp != nil && nb.AllocsPerOp != nil && *nb.AllocsPerOp > allocsAllowed(*ob.AllocsPerOp) {
			fmt.Fprintf(w, "%-60s %12.0f -> %12.0f allocs/op        REGRESSION\n", nb.Name, *ob.AllocsPerOp, *nb.AllocsPerOp)
			regressions++
		}
	}
	fmt.Fprintf(w, "compared %d benchmarks, %d regressions (threshold %.2fx)\n", compared, regressions, threshold)
	return finishCompare(w, compared, regressions)
}

// allocsAllowed returns the highest allocs/op a new run may report
// without counting as a regression. Zero-alloc paths are pinned exactly
// (0 -> 1 always fails); nonzero baselines get one alloc of slack,
// because allocs/op is total-allocations/b.N and one-time lazy
// initialization amortized over a run-dependent b.N makes the rounded
// value flip by one between identical binaries. Baselines in the
// thousands (the parallel-sweep benchmarks, where one op is a whole
// multi-goroutine sweep) additionally get 0.1% relative slack:
// goroutine scheduling moves a few allocations between identical
// binaries, and a fixed ±1 would flap on exactly the benchmarks whose
// counts are largest. A real leak is per-op and blows through 0.1%
// immediately.
func allocsAllowed(base float64) float64 {
	if base == 0 {
		return 0
	}
	slack := base * 0.001
	if slack < 1 {
		slack = 1
	}
	return base + slack
}

func finishCompare(w io.Writer, compared, regressions int) int {
	if compared == 0 {
		fmt.Fprintln(w, "benchjson: no overlapping benchmarks to compare")
		return 2
	}
	if regressions > 0 {
		return 1
	}
	return 0
}
