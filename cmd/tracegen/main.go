// Command tracegen records and replays application memory traces.
//
// Record a SPEC profile's operation stream:
//
//	tracegen record -workload gcc -out gcc.trace
//
// Replay it on a differently configured machine (trace-driven what-if):
//
//	tracegen replay -in gcc.trace -mode baseline -zeroing non-temporal
//	tracegen replay -in gcc.trace -mode ss -zeroing shred
package main

import (
	"flag"
	"fmt"
	"os"

	"silentshredder/internal/kernel"
	"silentshredder/internal/memctrl"
	"silentshredder/internal/obs"
	"silentshredder/internal/sim"
	"silentshredder/internal/trace"
	"silentshredder/internal/workloads/spec"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

func machine(mode memctrl.Mode, zm kernel.ZeroMode, scale int) *sim.Machine {
	cfg := sim.ScaledConfig(mode, zm, scale)
	cfg.Hier.Cores = 1
	cfg.StoreData = false
	cfg.MemPages = 1 << 20
	return sim.MustNew(cfg)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	workload := fs.String("workload", "gcc", "SPEC profile to trace")
	out := fs.String("out", "", "output trace file (required)")
	seed := fs.Int64("seed", 1, "workload instance seed")
	scale := fs.Int("scale", 8, "cache scale during recording")
	var profCfg obs.ProfileConfig
	profCfg.RegisterFlags(fs)
	fs.Parse(args)
	stopProf, perr := profCfg.Start()
	if perr != nil {
		fatal(perr.Error())
	}
	defer stopProf()
	if *out == "" {
		fatal("record: -out is required")
	}
	profile, ok := spec.ByName(*workload)
	if !ok {
		fatal(fmt.Sprintf("record: unknown SPEC profile %q", *workload))
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err.Error())
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		fatal(err.Error())
	}

	m := machine(memctrl.SilentShredder, kernel.ZeroShred, *scale)
	rt := m.Runtime(0)
	rt.SetTraceHook(w.Hook())
	spec.Run(rt, profile, *seed)
	if err := w.Flush(); err != nil {
		fatal(err.Error())
	}
	fmt.Printf("recorded %d operations from %s (seed %d) to %s\n",
		w.Count(), *workload, *seed, *out)
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("in", "", "input trace file (required)")
	mode := fs.String("mode", "ss", "controller: ss | baseline")
	zeroing := fs.String("zeroing", "", "kernel zeroing: shred | non-temporal | temporal")
	scale := fs.Int("scale", 8, "cache scale during replay")
	var profCfg obs.ProfileConfig
	profCfg.RegisterFlags(fs)
	fs.Parse(args)
	stopProf, perr := profCfg.Start()
	if perr != nil {
		fatal(perr.Error())
	}
	defer stopProf()
	if *in == "" {
		fatal("replay: -in is required")
	}

	mcMode, zm := memctrl.SilentShredder, kernel.ZeroShred
	if *mode == "baseline" {
		mcMode, zm = memctrl.Baseline, kernel.ZeroNonTemporal
	}
	switch *zeroing {
	case "":
	case "shred":
		zm = kernel.ZeroShred
	case "non-temporal":
		zm = kernel.ZeroNonTemporal
	case "temporal":
		zm = kernel.ZeroTemporal
	default:
		fatal(fmt.Sprintf("replay: unknown zeroing %q", *zeroing))
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal(err.Error())
	}
	defer f.Close()

	m := machine(mcMode, zm, *scale)
	n, err := trace.ReplayAll(f, m.Runtime(0))
	if err != nil {
		fatal(err.Error())
	}
	m.Hier.FlushAll()
	m.MC.Flush()
	fmt.Printf("replayed %d operations under mode=%s zeroing=%s\n", n, mcMode, zm)
	fmt.Printf("  IPC:             %.4f\n", m.AggregateIPC())
	fmt.Printf("  NVM writes:      %d\n", m.Dev.Writes())
	fmt.Printf("  NVM reads:       %d\n", m.MC.DataReads())
	fmt.Printf("  zero-fill reads: %d\n", m.MC.ZeroFillReads())
	fmt.Printf("  shred commands:  %d\n", m.MC.ShredCommands())
	fmt.Printf("  mean read lat:   %.1f cycles\n", m.MC.MeanReadLatency())
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "tracegen: "+msg)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tracegen record|replay [flags]")
}
