// Command experiments regenerates every table and figure in the paper's
// evaluation, plus the design-choice ablations. Each subcommand prints an
// aligned text table with the paper's reference numbers in the title.
//
// Usage:
//
//	experiments [flags] <experiment>...
//
// Experiments: table1 table2 fig4 fig5 fig8 fig9 fig10 fig11 fig12
// ablation-iv ablation-dcw ablation-deuce ablation-wt ablation-merkle
// banks faults crash adversary merkle latency energy export summary
// timeseries all
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"silentshredder/internal/adversary"
	"silentshredder/internal/exper"
	"silentshredder/internal/integrity"
	"silentshredder/internal/kernel"
	"silentshredder/internal/memctrl"
	"silentshredder/internal/obs"
	"silentshredder/internal/obscli"
	"silentshredder/internal/stats"
)

func main() {
	var o exper.Options
	flag.IntVar(&o.Cores, "cores", 8, "simulated cores (one workload instance per core)")
	flag.IntVar(&o.Scale, "scale", 8, "divide Table 1 cache capacities by this factor")
	flag.BoolVar(&o.Quick, "quick", false, "shrink workloads for a fast smoke run")
	flag.IntVar(&o.Parallel, "parallel", runtime.GOMAXPROCS(0),
		"worker goroutines for independent simulation runs (1 = sequential; output is byte-identical either way)")
	flag.BoolVar(&o.Check, "check", false,
		"run every machine under the architectural oracle and invariant sweeps (slow; violations abort the run)")
	flag.IntVar(&o.MCWorkers, "mc-workers", 0,
		"memory controller crypto-datapath workers per machine (0/1 = sequential; output is byte-identical for any value)")
	flag.IntVar(&o.Banks, "banks", 0, "NVM banks per channel (0 keeps Table 1's 8)")
	flag.IntVar(&o.BankQueueDepth, "bank-queue", 0,
		"per-bank posted-write queue depth; > 0 enables the banked drain-scheduler device model")
	flag.IntVar(&o.BankDrainBatch, "bank-drain", 0,
		"writes drained back-to-back when a bank queue fills (0 = default batch)")
	integrityEngine := flag.String("integrity-engine", "eager",
		"integrity engine for Merkle-enabled machines: eager | cached (output is engine-invariant where pinned by goldens)")
	var workloads string
	flag.StringVar(&workloads, "workloads", "", "comma-separated subset for fig8-fig11 (default: all 29)")
	var format string
	flag.StringVar(&format, "format", "text", "output for the comparison data: text | csv | json")
	obsPhase := flag.Bool("obs-phase", false, "print host wall-time phase/run timings to stderr after the sweeps")
	var obsFlags obscli.Flags
	obsFlags.Register(flag.CommandLine)
	var profCfg obs.ProfileConfig
	profCfg.RegisterFlags(flag.CommandLine)
	flag.Usage = usage
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	engine, err := integrity.ParseEngineKind(*integrityEngine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	o.IntegrityEngine = engine

	stopProf, err := profCfg.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	defer stopProf()
	if *obsPhase {
		o.Profile = exper.NewSweepProfile()
		defer func() {
			o.Profile.Finish()
			fmt.Fprint(os.Stderr, o.Profile.Report())
		}()
	}

	names := splitList(workloads)

	// fig8-fig11 share one comparison sweep; run it lazily and once.
	var results []exper.Result
	comparison := func() []exper.Result {
		if results == nil {
			fmt.Fprintf(os.Stderr, "running baseline vs Silent Shredder comparison (%d workloads x %d cores x 2 modes, %d sweep workers)...\n",
				lenOr(names, 29), o.Cores, o.Parallel)
			results = exper.CompareAll(o, names)
		}
		return results
	}

	for _, cmd := range args {
		o.Profile.StartPhase(cmd) // nil-safe: no-op without -obs-phase
		switch cmd {
		case "timeseries":
			if err := runTimeseries(o, names, &obsFlags); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
		case "table1":
			fmt.Println(exper.Table1(o))
		case "table2":
			fmt.Println(exper.Table2Format(exper.Table2(o)))
		case "fig4":
			fmt.Println(exper.Fig4Table(exper.Fig4(o, nil)))
		case "fig5":
			fmt.Println(exper.Fig5Table(exper.Fig5(o)))
		case "fig8":
			fmt.Println(exper.Fig8Table(comparison()))
		case "fig9":
			fmt.Println(exper.Fig9Table(comparison()))
		case "fig10":
			fmt.Println(exper.Fig10Table(comparison()))
		case "fig11":
			fmt.Println(exper.Fig11Table(comparison()))
		case "fig12":
			fmt.Println(exper.Fig12Table(o, exper.Fig12(o, nil)))
		case "ablation-iv":
			fmt.Println(exper.AblationIVTable(exper.AblationIV(o)))
		case "ablation-dcw":
			fmt.Println(exper.AblationDCWTable(exper.AblationDCW(o)))
		case "ablation-deuce":
			fmt.Println(exper.AblationDeuceTable(exper.AblationDeuce(o)))
		case "ablation-writeq":
			fmt.Println(exper.AblationWQTable(exper.AblationWQ(o)))
		case "ablation-wt":
			fmt.Println(exper.AblationWTTable(exper.AblationWT(o)))
		case "ablation-merkle":
			fmt.Println(exper.AblationMerkleTable(exper.AblationMerkle(o)))
		case "banks":
			fmt.Println(exper.BanksTable(exper.Banks(o)))
		case "faults":
			rows, err := exper.FaultSweep(o, "lbm", 42, []float64{1, 4, 16})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(exper.FaultSweepTable(rows))
		case "crash":
			rows, err := exper.CrashSweep(o, 42, 16)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(exper.CrashSweepTable(rows))
		case "adversary":
			rows, err := exper.AdversaryMatrix(o, 42, adversary.AllAttackers())
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(exper.AdversaryTable(rows))
		case "merkle":
			rows, err := exper.MerkleSweep(o, 42, obsFlags.Ring)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(exper.MerkleTable(rows))
			fmt.Println(exper.MerkleLevelTable(rows))
		case "latency":
			rows, err := exper.LatencySweep(o)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(exper.LatencyTable(rows))
		case "energy":
			fmt.Println(exper.EnergyTable(comparison()))
		case "summary":
			printSummary(comparison())
		case "export":
			switch format {
			case "csv":
				out, err := exper.ResultsCSV(comparison())
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Print(out)
			case "json":
				out, err := exper.ResultsJSON(comparison())
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Println(string(out))
			default:
				fmt.Println(exper.Fig8Table(comparison()))
				fmt.Println(exper.Fig9Table(comparison()))
				fmt.Println(exper.Fig10Table(comparison()))
				fmt.Println(exper.Fig11Table(comparison()))
			}
		case "all":
			fmt.Println(exper.Table1(o))
			fmt.Println(exper.Table2Format(exper.Table2(o)))
			fmt.Println(exper.Fig4Table(exper.Fig4(o, nil)))
			fmt.Println(exper.Fig5Table(exper.Fig5(o)))
			fmt.Println(exper.Fig8Table(comparison()))
			fmt.Println(exper.Fig9Table(comparison()))
			fmt.Println(exper.Fig10Table(comparison()))
			fmt.Println(exper.Fig11Table(comparison()))
			fmt.Println(exper.Fig12Table(o, exper.Fig12(o, nil)))
			fmt.Println(exper.AblationIVTable(exper.AblationIV(o)))
			fmt.Println(exper.AblationDCWTable(exper.AblationDCW(o)))
			fmt.Println(exper.AblationDeuceTable(exper.AblationDeuce(o)))
			fmt.Println(exper.AblationWTTable(exper.AblationWT(o)))
			fmt.Println(exper.AblationWQTable(exper.AblationWQ(o)))
			fmt.Println(exper.AblationMerkleTable(exper.AblationMerkle(o)))
			fmt.Println(exper.BanksTable(exper.Banks(o)))
			if rows, err := exper.MerkleSweep(o, 42, obsFlags.Ring); err == nil {
				fmt.Println(exper.MerkleTable(rows))
				fmt.Println(exper.MerkleLevelTable(rows))
			} else {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			if rows, err := exper.LatencySweep(o); err == nil {
				fmt.Println(exper.LatencyTable(rows))
			} else {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			if rows, err := exper.AdversaryMatrix(o, 42, adversary.AllAttackers()); err == nil {
				fmt.Println(exper.AdversaryTable(rows))
			} else {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(exper.EnergyTable(comparison()))
			printSummary(comparison())
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n\n", cmd)
			usage()
			os.Exit(2)
		}
	}
}

// runTimeseries is the time-resolved observability recipe: run each
// workload (default pagerank) under Silent Shredder with the epoch
// sampler (and the event bus when -obs-trace is set), then export the
// merged epoch series / Chrome trace. The sweep is fanned out like every
// other experiment; captures merge in workload order, so output is
// byte-identical for any -parallel.
func runTimeseries(o exper.Options, names []string, f *obscli.Flags) error {
	if len(names) == 0 {
		names = []string{"pagerank"}
	}
	if f.Epoch == 0 {
		f.Epoch = 1 << 20 // ~0.5ms of machine time per epoch
	}
	type out struct {
		cap obscli.Capture
		err error
	}
	parallel := o.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	outs := exper.RunIndexed(parallel, len(names), exper.ProfiledJob(o.Profile, func(i int) out {
		bus := f.NewBus()
		m, err := exper.RunWorkloadTweaked(o, names[i], memctrl.SilentShredder, kernel.ZeroShred,
			exper.MachineTweaks{Bus: bus, EpochEvery: f.Epoch})
		if err != nil {
			return out{err: err}
		}
		return out{cap: f.Capture(names[i], bus, m)}
	}))
	caps := make([]obscli.Capture, len(outs))
	for i, r := range outs {
		if r.err != nil {
			return r.err
		}
		caps[i] = r.cap
	}
	return f.Write(caps)
}

func printSummary(results []exper.Result) {
	var ws, rs, sp, ipc []float64
	for _, r := range results {
		ws = append(ws, r.WriteSavings)
		rs = append(rs, r.ReadSavings)
		sp = append(sp, r.ReadSpeedup)
		ipc = append(ipc, r.RelativeIPC)
	}
	ref := exper.PaperRef
	t := stats.NewTable("Summary: paper-reported vs measured (averages)",
		"metric", "paper", "measured")
	t.AddRow("write savings (fig 8)", ref.AvgWriteSavings, stats.ArithMean(ws))
	t.AddRow("read traffic savings (fig 9)", ref.AvgReadSavings, stats.ArithMean(rs))
	t.AddRow("memory read speedup (fig 10)", ref.AvgReadSpeedup, stats.GeoMean(sp))
	t.AddRow("relative IPC (fig 11)", 1+ref.AvgIPCGain, stats.GeoMean(ipc))
	fmt.Println(t)
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func lenOr(s []string, def int) int {
	if len(s) == 0 {
		return def
	}
	return len(s)
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: experiments [flags] <experiment>...

Regenerates the paper's evaluation tables and figures on the simulator.

experiments:
  table1           simulated system configuration
  table2           initialization-technique comparison (measured)
  fig4             kernel-zeroing share of memset time (64MB-1GB)
  fig5             relative writes by kernel zeroing strategy (PowerGraph)
  fig8             per-benchmark main-memory write savings
  fig9             per-benchmark read-traffic savings
  fig10            per-benchmark memory read speedup
  fig11            per-benchmark relative IPC
  fig12            counter-cache size vs miss rate
  ablation-iv      the three 4.2 shred encodings
  ablation-dcw     encryption diffusion vs DCW/Flip-N-Write
  ablation-deuce   Silent Shredder composed with DEUCE
  ablation-wt      write-back vs write-through counter cache
  ablation-writeq  zeroing write bursts blocking reads
  ablation-merkle  Bonsai Merkle integrity overhead
  banks            bank/queue geometry sweep under the banked device model
                   (per-bank write queues, drain batching, read-around;
                   -banks/-bank-queue/-bank-drain/-mc-workers)
  faults           ECC corrections and retirements vs injected fault rate
  crash            crash-anywhere recovery validation sweep
  adversary        persistence-attack matrix: remanence / scavenger / replay
                   attackers vs every (personality, shred-policy) cell
  merkle           integrity-engine comparison: eager vs cached/coalesced
                   hash traffic per tree level over one checked workload
  latency          latency provenance: per-op mean cycles split by layer
                   (mmu/cache/counter/pad/integrity/bank/device) for the
                   baseline's NT-zero clear vs Silent Shredder's shred
  energy           NVM energy savings (the paper's power-reduction claim)
  export           comparison data as text/csv/json (see -format)
  summary          averages vs the paper's headline numbers
  timeseries       time-resolved shred/zero-fill/counter-cache series
                   (-obs-epoch interval, -obs-epoch-out CSV/JSON,
                   -obs-trace Chrome trace; workloads from -workloads)
  all              everything above

flags:
`)
	flag.PrintDefaults()
}
