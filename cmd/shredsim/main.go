// Command shredsim runs one or more workloads on the simulated
// secure-NVMM machine and dumps the full statistics registry — the
// general-purpose front door to the simulator.
//
// -workload accepts a comma-separated list; independent runs are fanned
// out across -parallel worker goroutines (each machine confined to its
// worker, statistics crossing back as by-value snapshots) and reported in
// the order given, so output is byte-identical for any worker count.
//
// Examples:
//
//	shredsim -workload pagerank -mode ss -zeroing shred
//	shredsim -workload mcf -mode baseline -zeroing non-temporal -cores 4
//	shredsim -workload mcf,gcc,pagerank -parallel 3
//	shredsim -workload kvstore -faults 42:stuck=1e-3,flip=1e-5,drop=1e-4
//	shredsim -list
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"

	"silentshredder/internal/exper"
	"silentshredder/internal/fault"
	intg "silentshredder/internal/integrity"
	"silentshredder/internal/kernel"
	"silentshredder/internal/memctrl"
	"silentshredder/internal/obs"
	"silentshredder/internal/obscli"
	"silentshredder/internal/stats"
	"silentshredder/internal/telemetry"
	"silentshredder/internal/workloads/spec"
)

func main() {
	var (
		workload = flag.String("workload", "pagerank", "workload(s) to run, comma-separated (see -list)")
		mode     = flag.String("mode", "ss", "memory controller: ss | baseline")
		zeroing  = flag.String("zeroing", "", "kernel zeroing: shred | non-temporal | temporal (default matches -mode)")
		cores    = flag.Int("cores", 8, "cores (one workload instance each)")
		scale    = flag.Int("scale", 8, "divide Table 1 cache capacities by this factor")
		quick    = flag.Bool("quick", false, "shrink the workload")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines when running several workloads (1 = sequential)")
		list     = flag.Bool("list", false, "list available workloads and exit")

		deuce     = flag.Bool("deuce", false, "enable DEUCE partial re-encryption")
		integrity = flag.Bool("integrity", false, "enable the Bonsai Merkle counter tree")
		intEngine = flag.String("integrity-engine", "eager", "integrity engine when the Merkle tree is enabled: eager | cached")
		ccSize    = flag.Int("counter-cache", 0, "counter cache bytes (0 = Table 1 / scale)")
		wt        = flag.Bool("write-through", false, "write-through counter cache (no battery needed)")
		saveNVM   = flag.String("save-nvm", "", "after the run, write a memory-state checkpoint (DIMM image) to this file (single workload only)")
		check     = flag.Bool("check", false, "cross-check every load against the architectural oracle and sweep machine-wide invariants (slow; violations abort)")
		faults    = flag.String("faults", "", "deterministic fault injection, seed:rate,... e.g. 42:stuck=1e-3,flip=1e-6,drop=1e-4,torn=1e-5,endur=1000 (enables ECC; \"off\" or empty disables)")
		shredPol  = flag.String("shred-policy", "zero-cost", "physical shred policy: zero-cost | duty-to-delete | multi-pass (overwrite invalidated pages on the device)")
		mcWorkers = flag.Int("mc-workers", 0, "memory controller crypto-datapath workers (0/1 = sequential; output is byte-identical for any value)")
		banks     = flag.Int("banks", 0, "NVM banks per channel (0 keeps Table 1's 8)")
		bankQueue = flag.Int("bank-queue", 0, "per-bank posted-write queue depth; > 0 enables the banked drain-scheduler device model")
		bankDrain = flag.Int("bank-drain", 0, "writes drained back-to-back when a bank queue fills (0 = default batch)")
		obsPhase  = flag.Bool("obs-phase", false, "print host wall-time phase/run timings to stderr after the sweep")
		serve     = flag.String("serve", "", "after the run(s), serve live telemetry (/metrics in Prometheus text format, /healthz) on this address, e.g. :9090, until interrupted")
	)
	var obsFlags obscli.Flags
	obsFlags.Register(flag.CommandLine)
	var profCfg obs.ProfileConfig
	profCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()

	stopProf, err := profCfg.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "shredsim: %v\n", err)
		os.Exit(2)
	}
	defer stopProf()

	faultCfg, err := fault.Parse(*faults)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shredsim: %v\n", err)
		os.Exit(2)
	}
	policy, err := memctrl.ParseShredPolicy(*shredPol)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shredsim: %v\n", err)
		os.Exit(2)
	}
	engine, err := intg.ParseEngineKind(*intEngine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shredsim: %v\n", err)
		os.Exit(2)
	}

	if *list {
		fmt.Println("SPEC CPU2006 profiles:")
		for _, p := range spec.Profiles {
			fmt.Printf("  %s\n", p.Name)
		}
		fmt.Println("PowerGraph applications:")
		for _, n := range exper.Fig5Workloads {
			fmt.Printf("  %s\n", n)
		}
		return
	}

	mcMode := memctrl.SilentShredder
	zm := kernel.ZeroShred
	switch *mode {
	case "ss", "silent-shredder":
	case "baseline":
		mcMode = memctrl.Baseline
		zm = kernel.ZeroNonTemporal
	default:
		fmt.Fprintf(os.Stderr, "shredsim: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	switch *zeroing {
	case "":
	case "shred":
		zm = kernel.ZeroShred
	case "non-temporal":
		zm = kernel.ZeroNonTemporal
	case "temporal":
		zm = kernel.ZeroTemporal
	default:
		fmt.Fprintf(os.Stderr, "shredsim: unknown zeroing %q\n", *zeroing)
		os.Exit(2)
	}
	if zm == kernel.ZeroShred && mcMode != memctrl.SilentShredder {
		fmt.Fprintln(os.Stderr, "shredsim: shred zeroing requires -mode ss")
		os.Exit(2)
	}

	names := splitList(*workload)
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "shredsim: no workload given")
		os.Exit(2)
	}

	o := exper.Options{
		Cores: *cores, Scale: *scale, Quick: *quick, Parallel: *parallel, Check: *check,
		MCWorkers: *mcWorkers, Banks: *banks, BankQueueDepth: *bankQueue, BankDrainBatch: *bankDrain,
		IntegrityEngine: engine,
	}
	tweak := exper.MachineTweaks{
		DEUCE:            *deuce,
		Integrity:        *integrity,
		CounterCacheSize: *ccSize,
		WriteThrough:     *wt,
		Policy:           policy,
		Faults:           faultCfg,
		EpochEvery:       obsFlags.Epoch,
	}
	var profile *exper.SweepProfile
	if *obsPhase {
		profile = exper.NewSweepProfile()
		profile.StartPhase("simulate")
		o.Profile = profile
	}
	reportProfile := func() {
		if profile != nil {
			profile.Finish()
			fmt.Fprint(os.Stderr, profile.Report())
		}
	}
	if faultCfg.Enabled() && *check {
		fmt.Fprintln(os.Stderr, "shredsim: -check and -faults are incompatible (lost lines legitimately diverge from the oracle)")
		os.Exit(2)
	}

	if len(names) == 1 {
		// Single run in the main goroutine: the machine stays available
		// for post-run operations like -save-nvm.
		bus := obsFlags.NewBus()
		tweak.Bus = bus
		tweak.Spans = obsFlags.NewSpans()
		m, err := exper.RunWorkloadTweaked(o, names[0], mcMode, zm, tweak)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shredsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(report(names[0], mcMode, zm, *cores, *scale,
			m.AggregateIPC(), m.TotalInstructions(), m.MaxCycles(), m.Snapshot()))
		if cr := m.CheckReport(); cr != "" {
			fmt.Printf("\n%s\n", cr)
		}
		cap := obsFlags.Capture(names[0], bus, m)
		if obsFlags.Enabled() {
			if err := obsFlags.Write([]obscli.Capture{cap}); err != nil {
				fmt.Fprintf(os.Stderr, "shredsim: %v\n", err)
				os.Exit(1)
			}
		}
		reportProfile()
		if *saveNVM != "" {
			f, err := os.Create(*saveNVM)
			if err != nil {
				fmt.Fprintf(os.Stderr, "shredsim: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			if err := m.SaveMemoryState(f); err != nil {
				fmt.Fprintf(os.Stderr, "shredsim: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "memory-state checkpoint written to %s\n", *saveNVM)
		}
		if *serve != "" {
			sample := telemetry.Sample{
				Run: names[0], Cycles: m.MaxCycles(), Instructions: m.TotalInstructions(),
				IPC: m.AggregateIPC(), Snap: m.Snapshot(), Spans: cap.SpanAgg,
			}
			if err := serveTelemetry(*serve, []telemetry.Sample{sample}); err != nil {
				fmt.Fprintf(os.Stderr, "shredsim: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	if *saveNVM != "" {
		fmt.Fprintln(os.Stderr, "shredsim: -save-nvm requires a single workload")
		os.Exit(2)
	}

	// Multi-workload sweep: one machine per worker goroutine; only plain
	// values (the report string, built from a stats snapshot) escape a
	// worker, so the sweep is race-free and its output deterministic.
	type runOut struct {
		text   string
		cap    obscli.Capture
		sample telemetry.Sample
		err    error
	}
	outs := exper.RunIndexed(*parallel, len(names), exper.ProfiledJob(profile, func(i int) runOut {
		// Per-run bus, sampler, and span recorder, confined to this
		// worker: captures cross back by value, so traces merge
		// deterministically.
		tw := tweak
		tw.Bus = obsFlags.NewBus()
		tw.Spans = obsFlags.NewSpans()
		m, err := exper.RunWorkloadTweaked(o, names[i], mcMode, zm, tw)
		if err != nil {
			return runOut{err: err}
		}
		text := report(names[i], mcMode, zm, *cores, *scale,
			m.AggregateIPC(), m.TotalInstructions(), m.MaxCycles(), m.Snapshot())
		if cr := m.CheckReport(); cr != "" {
			text += "\n" + cr + "\n"
		}
		cap := obsFlags.Capture(names[i], tw.Bus, m)
		return runOut{text: text, cap: cap, sample: telemetry.Sample{
			Run: names[i], Cycles: m.MaxCycles(), Instructions: m.TotalInstructions(),
			IPC: m.AggregateIPC(), Snap: m.Snapshot(), Spans: cap.SpanAgg,
		}}
	}))
	failed := false
	for i, r := range outs {
		if r.err != nil {
			fmt.Fprintf(os.Stderr, "shredsim: %v\n", r.err)
			failed = true
			continue
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(r.text)
	}
	if obsFlags.Enabled() && !failed {
		caps := make([]obscli.Capture, len(outs))
		for i, r := range outs {
			caps[i] = r.cap
		}
		if err := obsFlags.Write(caps); err != nil {
			fmt.Fprintf(os.Stderr, "shredsim: %v\n", err)
			failed = true
		}
	}
	reportProfile()
	if failed {
		os.Exit(1)
	}
	if *serve != "" {
		samples := make([]telemetry.Sample, len(outs))
		for i, r := range outs {
			samples[i] = r.sample
		}
		if err := serveTelemetry(*serve, samples); err != nil {
			fmt.Fprintf(os.Stderr, "shredsim: %v\n", err)
			os.Exit(1)
		}
	}
}

// serveTelemetry publishes the finished runs' samples and serves the
// telemetry endpoints until the process is interrupted.
func serveTelemetry(addr string, samples []telemetry.Sample) error {
	var p telemetry.Publisher
	p.Publish(samples)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "shredsim: serving /metrics and /healthz on http://%s (interrupt to stop)\n", ln.Addr())
	return http.Serve(ln, telemetry.Handler(&p))
}

// report renders one run. It takes only plain values (no live machine):
// workers hand their statistics over as a by-value stats.Snapshot, whose
// Dump is byte-identical to the live Registry's.
func report(name string, mcMode memctrl.Mode, zm kernel.ZeroMode, cores, scale int,
	ipc float64, instructions, maxCycles uint64, snap stats.Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload=%s mode=%s zeroing=%s cores=%d scale=1/%d\n\n",
		name, mcMode, zm, cores, scale)
	fmt.Fprintf(&b, "aggregate IPC: %.4f\n", ipc)
	fmt.Fprintf(&b, "instructions:  %d\n", instructions)
	fmt.Fprintf(&b, "cycles (max):  %d (%.3f ms simulated)\n\n",
		maxCycles, float64(maxCycles)/2e9*1e3)
	b.WriteString(snap.Dump())
	return b.String()
}

func splitList(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
