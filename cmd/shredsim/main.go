// Command shredsim runs a single workload on the simulated secure-NVMM
// machine and dumps the full statistics registry — the general-purpose
// front door to the simulator.
//
// Examples:
//
//	shredsim -workload pagerank -mode ss -zeroing shred
//	shredsim -workload mcf -mode baseline -zeroing non-temporal -cores 4
//	shredsim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"silentshredder/internal/exper"
	"silentshredder/internal/kernel"
	"silentshredder/internal/memctrl"
	"silentshredder/internal/workloads/spec"
)

func main() {
	var (
		workload = flag.String("workload", "pagerank", "workload to run (see -list)")
		mode     = flag.String("mode", "ss", "memory controller: ss | baseline")
		zeroing  = flag.String("zeroing", "", "kernel zeroing: shred | non-temporal | temporal (default matches -mode)")
		cores    = flag.Int("cores", 8, "cores (one workload instance each)")
		scale    = flag.Int("scale", 8, "divide Table 1 cache capacities by this factor")
		quick    = flag.Bool("quick", false, "shrink the workload")
		list     = flag.Bool("list", false, "list available workloads and exit")

		deuce     = flag.Bool("deuce", false, "enable DEUCE partial re-encryption")
		integrity = flag.Bool("integrity", false, "enable the Bonsai Merkle counter tree")
		ccSize    = flag.Int("counter-cache", 0, "counter cache bytes (0 = Table 1 / scale)")
		wt        = flag.Bool("write-through", false, "write-through counter cache (no battery needed)")
		saveNVM   = flag.String("save-nvm", "", "after the run, write a memory-state checkpoint (DIMM image) to this file")
	)
	flag.Parse()

	if *list {
		fmt.Println("SPEC CPU2006 profiles:")
		for _, p := range spec.Profiles {
			fmt.Printf("  %s\n", p.Name)
		}
		fmt.Println("PowerGraph applications:")
		for _, n := range exper.Fig5Workloads {
			fmt.Printf("  %s\n", n)
		}
		return
	}

	mcMode := memctrl.SilentShredder
	zm := kernel.ZeroShred
	switch *mode {
	case "ss", "silent-shredder":
	case "baseline":
		mcMode = memctrl.Baseline
		zm = kernel.ZeroNonTemporal
	default:
		fmt.Fprintf(os.Stderr, "shredsim: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	switch *zeroing {
	case "":
	case "shred":
		zm = kernel.ZeroShred
	case "non-temporal":
		zm = kernel.ZeroNonTemporal
	case "temporal":
		zm = kernel.ZeroTemporal
	default:
		fmt.Fprintf(os.Stderr, "shredsim: unknown zeroing %q\n", *zeroing)
		os.Exit(2)
	}
	if zm == kernel.ZeroShred && mcMode != memctrl.SilentShredder {
		fmt.Fprintln(os.Stderr, "shredsim: shred zeroing requires -mode ss")
		os.Exit(2)
	}

	o := exper.Options{Cores: *cores, Scale: *scale, Quick: *quick}
	tweak := exper.MachineTweaks{
		DEUCE:            *deuce,
		Integrity:        *integrity,
		CounterCacheSize: *ccSize,
		WriteThrough:     *wt,
	}
	m, err := exper.RunWorkloadTweaked(o, *workload, mcMode, zm, tweak)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shredsim: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("workload=%s mode=%s zeroing=%s cores=%d scale=1/%d\n\n",
		*workload, mcMode, zm, *cores, *scale)
	fmt.Printf("aggregate IPC: %.4f\n", m.AggregateIPC())
	fmt.Printf("instructions:  %d\n", m.TotalInstructions())
	fmt.Printf("cycles (max):  %d (%.3f ms simulated)\n\n",
		m.MaxCycles(), float64(m.MaxCycles())/2e9*1e3)
	fmt.Print(m.Registry().Dump())

	if *saveNVM != "" {
		f, err := os.Create(*saveNVM)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shredsim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := m.SaveMemoryState(f); err != nil {
			fmt.Fprintf(os.Stderr, "shredsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "memory-state checkpoint written to %s\n", *saveNVM)
	}
}
