# Silent Shredder reproduction — developer entry points.
# Everything is plain `go` under the hood; these are just the common runs.

GO ?= go

.PHONY: all build test vet race faults obs banks adversary merkle telemetry fuzz cover bench bench-json bench-compare bench-smoke quick-experiments experiments examples clean

all: build vet test race

build:
	$(GO) build ./...

# Static gate: go vet plus the gofmt check — the tree must be gofmt-clean
# (gofmt -l prints offending files; any output fails the target).
vet:
	$(GO) vet ./...
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi

test:
	$(GO) test ./...

# Tier-1 race gate: the parallel sweep engine fans independent machines
# out across goroutines; every run must stay confined to its worker.
# This exercises the worker pool (determinism tests run with -parallel 4)
# under the race detector and must pass before merging. It also runs the
# oracle-checked short workload sweeps (exper.TestCheckedWorkloadSweeps
# and the sim/oracle differential tests), so every merge re-validates the
# architectural contract under -race.
race: vet faults obs adversary merkle telemetry bench-smoke
	$(GO) test -race ./...

# Robustness gate, folded into tier-1 `race`: the fault-injection and
# crash-anywhere packages under the race detector, then the deterministic
# fault-rate sweep and the crash-anywhere recovery sweep end to end
# (includes the post-crash leak scan via leakscan -crash).
faults:
	$(GO) test -race ./internal/fault ./internal/sim ./internal/memctrl
	$(GO) run -race ./cmd/experiments -quick -cores 2 faults crash
	$(GO) run -race ./cmd/leakscan -crash 8 -seed 42

# Observability gate, folded into tier-1 `race`: the event-bus, epoch,
# and CLI-glue packages (golden trace/epoch exporter tests, the
# zero-allocation disabled path, parallel-sweep artifact determinism),
# then the obs-off byte-identity check — default CLI output must match
# the committed goldens exactly, proving the layer costs nothing when
# disabled. Regenerate goldens after an intentional output change with
# the same two commands redirected into testdata/golden/.
obs:
	$(GO) test ./internal/obs ./internal/stats ./internal/obscli ./internal/exper
	$(GO) run ./cmd/shredsim -quick -scale 64 -cores 2 -parallel 2 -workload pagerank,mcf \
		| diff -u testdata/golden/shredsim_quick.txt -
	$(GO) run ./cmd/experiments -quick -cores 2 -scale 64 -parallel 2 table2 fig5 2>/dev/null \
		| diff -u testdata/golden/experiments_quick.txt -
	$(MAKE) banks

# Banked-controller gate, folded into tier-1 `race` via `obs`: the
# concurrent controller datapath (-mc-workers) must reproduce the SAME
# goldens byte for byte at any width — the refactor's determinism
# contract — and the bank-geometry sweep must match its own golden.
banks:
	$(GO) run ./cmd/shredsim -quick -scale 64 -cores 2 -parallel 2 -mc-workers 8 -workload pagerank,mcf \
		| diff -u testdata/golden/shredsim_quick.txt -
	$(GO) run ./cmd/experiments -quick -cores 2 -scale 64 -parallel 2 -mc-workers 8 table2 fig5 2>/dev/null \
		| diff -u testdata/golden/experiments_quick.txt -
	$(GO) run ./cmd/experiments -quick -cores 2 -scale 64 -parallel 2 banks 2>/dev/null \
		| diff -u testdata/golden/experiments_banks.txt -

# Adversary gate, folded into tier-1 `race`: the persistence-attack
# matrix (remanence / scavenger / replay attackers vs every personality
# and shred policy) must reproduce its committed golden byte for byte at
# any sweep width, and the leakscan adversarial driver's JSON report
# must match its golden with the leak verdict (exit 1) intact — the
# encrypted/zero-cost defender is SUPPOSED to lose to the stale-counter
# replayer. Regenerate after an intentional change with the same
# commands redirected into the golden files.
adversary:
	$(GO) run ./cmd/experiments -quick -cores 2 -scale 64 -parallel 1 adversary 2>/dev/null \
		| diff -u testdata/golden/experiments_adversary.txt -
	$(GO) run ./cmd/experiments -quick -cores 2 -scale 64 -parallel 4 adversary 2>/dev/null \
		| diff -u testdata/golden/experiments_adversary.txt -
	@out=$$($(GO) run ./cmd/leakscan -attack replay -personality encrypted -format json 2>/dev/null); st=$$?; \
		if [ $$st -ne 1 ]; then echo "leakscan -attack: exit $$st, want 1 (leak verdict)"; exit 1; fi; \
		printf '%s\n' "$$out" | diff -u cmd/leakscan/testdata/attack_replay_encrypted.json -

# Integrity-engine gate, folded into tier-1 `race`: the per-level Merkle
# sweep must reproduce its golden byte for byte at any sweep width and
# any controller width (the per-level figure is rebuilt from the event
# bus, so this pins the engines' event streams too), and the adversary
# matrix must be invariant under the cached engine — lazy root
# maintenance may move hash work, never detection outcomes. Regenerate
# the golden after an intentional change with the first command
# redirected into testdata/golden/experiments_merkle.txt.
merkle:
	$(GO) run ./cmd/experiments -quick -cores 2 -scale 64 -parallel 1 merkle 2>/dev/null \
		| diff -u testdata/golden/experiments_merkle.txt -
	$(GO) run ./cmd/experiments -quick -cores 2 -scale 64 -parallel 4 merkle 2>/dev/null \
		| diff -u testdata/golden/experiments_merkle.txt -
	$(GO) run ./cmd/experiments -quick -cores 2 -scale 64 -parallel 2 -mc-workers 8 merkle 2>/dev/null \
		| diff -u testdata/golden/experiments_merkle.txt -
	$(GO) run ./cmd/experiments -quick -cores 2 -scale 64 -parallel 1 -integrity-engine cached adversary 2>/dev/null \
		| diff -u testdata/golden/experiments_adversary.txt -

# Latency-provenance gate, folded into tier-1 `race`: the span and
# telemetry package tests (spans-disabled AllocsPerRun proof, the
# Prometheus /metrics golden, breakdown export round trips), the
# `experiments latency` figure byte-identical to its golden at every
# sweep and controller width, and the spans-enabled shredsim run whose
# default stdout must still match the spans-off golden exactly — span
# recording observes the machine, it must never perturb it. Regenerate
# the latency golden after an intentional change with the first
# experiments command redirected into testdata/golden/.
telemetry:
	$(GO) test ./internal/span ./internal/telemetry
	$(GO) run ./cmd/experiments -quick -cores 2 -scale 64 -parallel 1 latency 2>/dev/null \
		| diff -u testdata/golden/experiments_latency.txt -
	$(GO) run ./cmd/experiments -quick -cores 2 -scale 64 -parallel 4 latency 2>/dev/null \
		| diff -u testdata/golden/experiments_latency.txt -
	$(GO) run ./cmd/experiments -quick -cores 2 -scale 64 -parallel 2 -mc-workers 8 latency 2>/dev/null \
		| diff -u testdata/golden/experiments_latency.txt -
	@tmp=$$(mktemp); \
		$(GO) run ./cmd/shredsim -quick -scale 64 -cores 2 -parallel 2 -workload pagerank,mcf -obs-spans $$tmp \
			| diff -u testdata/golden/shredsim_quick.txt - || { rm -f $$tmp; exit 1; }; \
		rm -f $$tmp

# Bounded fuzzing pass over the fuzz targets (seed corpora are committed
# under testdata/fuzz). FUZZTIME bounds each target's run.
FUZZTIME ?= 20s
fuzz:
	$(GO) test ./internal/trace -run='^$$' -fuzz=FuzzTraceCodec -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/oracle -run='^$$' -fuzz=FuzzOracleDifferential -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/sim -run='^$$' -fuzz=FuzzCrashRecovery -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/ctr -run='^$$' -fuzz=FuzzPadEquivalence -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/oracle -run='^$$' -fuzz=FuzzBankSchedule -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/integrity -run='^$$' -fuzz=FuzzEngineEquivalence -fuzztime=$(FUZZTIME)

# Coverage over all packages; prints the per-function summary tail and
# leaves cover.out for `go tool cover -html=cover.out`. The recorded
# baseline is in COVERAGE.md — keep total coverage at or above it.
cover:
	$(GO) test ./... -coverprofile=cover.out
	$(GO) tool cover -func=cover.out | tail -n 1

# Full test run recorded to test_output.txt (what EXPERIMENTS.md cites).
test-record:
	$(GO) test ./... 2>&1 | tee test_output.txt

# Benchmark pipeline. `bench` runs every benchmark (no unit tests),
# records the raw text, and converts it into the committed trajectory
# snapshot $(BENCH_JSON). The old `... | tee bench_output.txt` recipe
# masked benchmark failures behind tee's exit status; writing the file
# directly and catting it afterwards preserves both the transcript and
# the exit code.
BENCH_JSON ?= BENCH_9.json
bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./... > bench_output.txt 2>&1 \
		|| { cat bench_output.txt; exit 1; }
	@cat bench_output.txt
	$(GO) run ./cmd/benchjson -in bench_output.txt -out $(BENCH_JSON)

# Convert an existing bench_output.txt into $(BENCH_JSON) without
# rerunning the benchmarks (runs them first if no transcript exists).
bench-json:
	@test -f bench_output.txt || $(MAKE) bench
	$(GO) run ./cmd/benchjson -in bench_output.txt -out $(BENCH_JSON)

# Diff two benchmark snapshots; fails on any ns/op regression past
# THRESHOLD (ratio) or any allocs/op increase.
#   make bench-compare BASE=BENCH_7.json NEW=BENCH_9.json [THRESHOLD=1.30]
BASE ?= BENCH_7.json
NEW ?= BENCH_9.json
THRESHOLD ?= 1.30
bench-compare:
	$(GO) run ./cmd/benchjson -compare -threshold $(THRESHOLD) $(BASE) $(NEW)

# Smoke variant folded into tier-1 `race`: every benchmark runs exactly
# one iteration, catching panics and b.Fatal conditions (empty sweeps,
# missing figure points) without paying for timing-quality runs.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./... > /dev/null

# Fast smoke pass over every experiment (~1 minute sequential; scales
# down with -parallel, which defaults to GOMAXPROCS).
quick-experiments:
	$(GO) run ./cmd/experiments -quick -cores 2 -scale 64 all

# The full evaluation reproduction (~10 minutes on one core; the sweep
# engine uses every available core by default — pass PARALLEL=N to pin).
PARALLEL ?= 0
experiments:
	$(GO) run ./cmd/experiments -parallel $(PARALLEL) all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/graphanalytics
	$(GO) run ./examples/vmisolation
	$(GO) run ./examples/largeinit
	$(GO) run ./examples/persistent

clean:
	rm -f test_output.txt bench_output.txt bench_new.json cover.out
