# Silent Shredder reproduction — developer entry points.
# Everything is plain `go` under the hood; these are just the common runs.

GO ?= go

.PHONY: all build test vet bench quick-experiments experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full test run recorded to test_output.txt (what EXPERIMENTS.md cites).
test-record:
	$(GO) test ./... 2>&1 | tee test_output.txt

bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Fast smoke pass over every experiment (~1 minute).
quick-experiments:
	$(GO) run ./cmd/experiments -quick -cores 2 -scale 64 all

# The full evaluation reproduction (~10 minutes).
experiments:
	$(GO) run ./cmd/experiments all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/graphanalytics
	$(GO) run ./examples/vmisolation
	$(GO) run ./examples/largeinit
	$(GO) run ./examples/persistent

clean:
	rm -f test_output.txt bench_output.txt
